"""Tests for the experiment harness (reduced parameters).

These tests run every experiment with tiny parameters and assert both the
mechanical contract (rows, table rendering) and the qualitative shape each
benchmark later verifies at full size.
"""

from __future__ import annotations

import pytest

from repro.experiments import (
    EXPERIMENTS,
    run_e1_bucketization_attack,
    run_e2_damiani_attack,
    run_e3_dph_indistinguishability,
    run_e4_theorem21,
    run_e5_hospital_inference,
    run_e6_active_adversary,
    run_e7_false_positives,
    run_e8_throughput,
    run_e9_storage_overhead,
    run_e10_index_vs_scan,
)


class TestAttackExperiments:
    def test_e1_shape(self):
        result = run_e1_bucketization_attack(trials=30, bucket_counts=(16,))
        assert len(result.rows) == 2  # one bucketization row + the SWP reference
        bucket_row = result.rows[0]
        assert bucket_row.scheme == "bucketization"
        assert bucket_row.success_rate >= 0.9
        assert "E1" in result.to_table().render()

    def test_e2_shape(self):
        result = run_e2_damiani_attack(trials=30, hash_value_counts=(256,))
        damiani_row = result.rows[0]
        assert damiani_row.success_rate >= 0.9
        assert result.rows[-1].scheme == "deterministic"

    def test_e3_shape(self):
        result = run_e3_dph_indistinguishability(trials=40)
        assert {row.scheme for row in result.rows} == {"dph-swp", "dph-index"}
        assert all(abs(row.advantage) <= 0.4 for row in result.rows)

    def test_e4_shape(self):
        result = run_e4_theorem21(trials=15, table_size=6)
        broken = [r for r in result.rows if r.parameter in ("q=1 active", "q=1 passive")]
        immune = [r for r in result.rows if r.parameter == "q=0 active"]
        assert all(r.success_rate >= 0.9 for r in broken)
        assert all(abs(r.advantage) <= 0.6 for r in immune)


class TestInferenceExperiments:
    def test_e5_shape(self):
        result = run_e5_hospital_inference(sizes=(400,), trials=2)
        assert len(result.rows) == 1
        row = result.rows[0]
        assert row.identification_rate >= 0.5
        assert row.max_absolute_error <= 0.1
        assert "E5" in result.to_table().render()

    def test_e6_shape(self):
        result = run_e6_active_adversary(sizes=(400,), trials=2)
        row = result.rows[0]
        assert row.full_success_rate == 1.0
        assert row.mean_oracle_queries <= 6


class TestPerformanceExperiments:
    def test_e7_shape(self):
        result = run_e7_false_positives(check_lengths=(1,), words_per_setting=3000)
        row = result.rows[0]
        assert row.predicted_rate == pytest.approx(1 / 256)
        assert 0 <= row.observed_rate < 0.05

    def test_e8_shape(self):
        result = run_e8_throughput(sizes=(50,))
        schemes = {row.scheme for row in result.rows}
        assert "dph-swp" in schemes and "plaintext" in schemes
        assert all(row.encrypt_ms >= 0 for row in result.rows)
        assert all(row.result_size > 0 for row in result.rows)

    def test_e9_shape(self):
        result = run_e9_storage_overhead(sizes=(100,))
        by_scheme = {row.scheme: row for row in result.rows}
        assert by_scheme["dph-swp"].expansion > by_scheme["plaintext"].expansion
        assert all(row.expansion >= 1.0 for row in result.rows)

    def test_e10_shape(self):
        result = run_e10_index_vs_scan(
            sizes=(300,), queries_per_point=3, cluster_shards=2
        )
        cells = {(r.access, r.topology, r.query_kind) for r in result.rows}
        assert cells == {
            (access, topology, kind)
            for access in ("scan", "index")
            for topology in ("single", "cluster-2")
            for kind in ("point", "popular")
        }
        for row in result.rows:
            assert row.ops_per_s > 0 and row.avg_bytes_per_query > 0
            # Scans examine every tuple; the index examines ~the result.
            if row.access == "scan":
                assert row.avg_examined == 300
            else:
                assert row.avg_examined <= 300 * 0.75
        # Indexed results match scan results cell by cell.
        by_cell = {
            (r.access, r.topology, r.query_kind): r.avg_result_size
            for r in result.rows
        }
        for topology in ("single", "cluster-2"):
            for kind in ("point", "popular"):
                assert (
                    by_cell[("index", topology, kind)]
                    == by_cell[("scan", topology, kind)]
                )


class TestRegistry:
    def test_every_experiment_is_registered(self):
        identifiers = [spec.identifier for spec in EXPERIMENTS]
        assert identifiers == [f"E{i}" for i in range(1, 11)]

    def test_registry_entries_point_to_existing_benchmarks(self):
        import pathlib

        root = pathlib.Path(__file__).resolve().parents[2]
        for spec in EXPERIMENTS:
            assert (root / spec.benchmark).exists(), spec.benchmark

    def test_quick_parameters_are_usable(self):
        # Run the cheapest registry entry end to end through run_quick().
        spec = next(s for s in EXPERIMENTS if s.identifier == "E9")
        result = spec.run_quick()
        assert result.rows
