"""Fleet manifests: persistence, validation, and session restore."""

from __future__ import annotations

import json

import pytest

from repro.api import DatabaseError, EncryptedDatabase
from repro.cluster import (
    ClusterManifest,
    ManifestError,
    ShardEntry,
    ShardRouter,
    parse_cluster_file_url,
)
from repro.net import ThreadedTcpServer

EMP_DECL = "Emp(name:string[14], dept:string[5], salary:int[6])"
ROWS = [(f"emp{i}", "HR" if i % 2 else "IT", 1000 + i) for i in range(24)]


def manifest_for(*servers, **kwargs) -> ClusterManifest:
    return ClusterManifest(
        shards=tuple(
            ShardEntry(shard_id=f"shard-{index}", url=f"tcp://127.0.0.1:{server.port}")
            for index, server in enumerate(servers)
        ),
        **kwargs,
    )


class TestManifestDocument:
    def test_round_trips_through_disk(self, tmp_path):
        manifest = ClusterManifest(
            shards=(
                ShardEntry("a", "tcp://127.0.0.1:7707"),
                ShardEntry("b", "tcp://127.0.0.1:7708"),
            ),
            replicas=2,
            virtual_nodes=128,
            async_transport=True,
        )
        path = manifest.save(tmp_path / "fleet.json")
        assert ClusterManifest.load(path) == manifest
        document = json.loads(path.read_text())
        assert document["version"] == 1
        assert document["replicas"] == 2
        assert document["async"] is True

    def test_cluster_url_carries_the_topology_options(self):
        manifest = ClusterManifest(
            shards=(
                ShardEntry("a", "tcp://h1:1"),
                ShardEntry("b", "tcp://h2:2"),
            ),
            replicas=2,
            async_transport=True,
        )
        assert manifest.cluster_url() == "cluster://h1:1,h2:2?replicas=2&async=1"
        plain = ClusterManifest(shards=(ShardEntry("a", "tcp://h1:1"),))
        assert plain.cluster_url() == "cluster://h1:1"

    def test_validation_rejects_broken_topologies(self):
        entry = ShardEntry("a", "tcp://h:1")
        with pytest.raises(ManifestError, match="at least one shard"):
            ClusterManifest(shards=())
        with pytest.raises(ManifestError, match="replication factor"):
            ClusterManifest(shards=(entry,), replicas=2)
        with pytest.raises(ManifestError, match="duplicate shard id"):
            ClusterManifest(shards=(entry, ShardEntry("a", "tcp://h:2")))
        with pytest.raises(ManifestError, match="duplicate shard URL"):
            ClusterManifest(shards=(entry, ShardEntry("b", "tcp://h:1")))
        with pytest.raises(ManifestError, match="scheme"):
            ClusterManifest(shards=(ShardEntry("a", "http://h:1"),))

    def test_malformed_files_are_manifest_errors(self, tmp_path):
        missing = tmp_path / "nope.json"
        with pytest.raises(ManifestError, match="cannot read"):
            ClusterManifest.load(missing)
        garbage = tmp_path / "garbage.json"
        garbage.write_text("{not json")
        with pytest.raises(ManifestError, match="not valid JSON"):
            ClusterManifest.load(garbage)
        wrong_version = tmp_path / "future.json"
        wrong_version.write_text(json.dumps({"version": 99, "shards": []}))
        with pytest.raises(ManifestError, match="version"):
            ClusterManifest.load(wrong_version)

    def test_parse_cluster_file_url(self):
        assert str(parse_cluster_file_url("cluster+file:///tmp/f.json")) == "/tmp/f.json"
        assert str(parse_cluster_file_url("cluster+file://fleet.json")) == "fleet.json"
        with pytest.raises(ManifestError):
            parse_cluster_file_url("cluster+file://")
        with pytest.raises(ManifestError):
            parse_cluster_file_url("cluster://h:1")


class TestManifestSessions:
    def test_router_from_manifest_restores_ring_ids(self):
        with ThreadedTcpServer() as one, ThreadedTcpServer() as two:
            manifest = manifest_for(one, two, replicas=2)
            router = ShardRouter.from_manifest(manifest)
            try:
                assert router.shard_ids == ("shard-0", "shard-1")
                assert router.replication == 2
                assert not router.async_transport
            finally:
                router.close()

    def test_cluster_file_session_round_trip(self, tmp_path, secret_key, rng):
        """A session stores through one coordinator, then a second
        coordinator restored purely from the manifest file reads it all
        back -- no re-supplied topology, placement intact."""
        with ThreadedTcpServer() as one, ThreadedTcpServer() as two:
            path = manifest_for(one, two).save(tmp_path / "fleet.json")
            with EncryptedDatabase.connect(
                f"cluster+file://{path}", secret_key, rng=rng
            ) as db:
                db.create_table(EMP_DECL, rows=ROWS)
                assert db.count("Emp") == len(ROWS)
            # a fresh coordinator, topology from the file alone
            with EncryptedDatabase.connect(
                f"cluster+file://{path}", secret_key, rng=rng
            ) as db:
                db.attach_table(EMP_DECL)
                assert db.count("Emp") == len(ROWS)
                assert len(db.select("SELECT * FROM Emp WHERE dept = 'HR'").relation) == 12
                db.drop_table("Emp")

    def test_manifest_async_default_picks_the_pipelined_transport(self, secret_key):
        with ThreadedTcpServer() as one:
            manifest = manifest_for(one, async_transport=True)
            router = ShardRouter.from_manifest(manifest)
            try:
                assert router.async_transport
            finally:
                router.close()

    def test_conflicting_replicas_keyword_is_rejected(self, tmp_path):
        with ThreadedTcpServer() as one, ThreadedTcpServer() as two:
            path = manifest_for(one, two, replicas=2).save(tmp_path / "fleet.json")
            with pytest.raises(DatabaseError, match="conflicting replication"):
                EncryptedDatabase.connect(f"cluster+file://{path}", replicas=1)

    def test_missing_manifest_is_a_database_error(self, tmp_path):
        with pytest.raises(DatabaseError, match="cannot read"):
            EncryptedDatabase.connect(f"cluster+file://{tmp_path}/absent.json")