"""ShardRouter: CRUD routing, merging, partial failure, duck-type fidelity."""

from __future__ import annotations

import pytest

import threading

from repro.api import DatabaseError, EncryptedDatabase
from repro.cluster import (
    ClusterError,
    ClusterStats,
    DEGRADED,
    ShardFailedError,
    ShardRouter,
    parse_cluster_options,
    parse_cluster_url,
)
from repro.outsourcing import OutsourcedDatabaseServer, OutsourcingClient
from repro.outsourcing.protocol import PROTOCOL_V1, PROTOCOL_V2, PROTOCOL_V3
from repro.relational import Selection

EMP_DECL = "Emp(name:string[14], dept:string[5], salary:int[6])"
ROWS = [(f"emp{i}", "HR" if i % 2 else "IT", 1000 + i) for i in range(30)]


class FlakyServer(OutsourcedDatabaseServer):
    """A shard that can be switched off to exercise partial-failure paths."""

    def __init__(self):
        super().__init__()
        self.down = False

    def _check(self):
        if self.down:
            raise ConnectionError("shard is down")

    def handle_message(self, raw: bytes) -> bytes:
        self._check()
        return super().handle_message(raw)

    def execute_query(self, name, encrypted_query):
        self._check()
        return super().execute_query(name, encrypted_query)

    def insert_tuple(self, name, encrypted_tuple):
        self._check()
        return super().insert_tuple(name, encrypted_tuple)

    def delete_tuples(self, name, tuple_ids):
        self._check()
        return super().delete_tuples(name, tuple_ids)

    def delete_tuples_exact(self, name, tuple_ids):
        self._check()
        return super().delete_tuples_exact(name, tuple_ids)


@pytest.fixture
def backends():
    return [OutsourcedDatabaseServer() for _ in range(3)]


@pytest.fixture
def db(backends, secret_key, rng):
    session = EncryptedDatabase.open(secret_key, shards=backends, rng=rng)
    session.create_table(EMP_DECL, rows=ROWS)
    return session


class TestRouting:
    def test_tuples_spread_across_every_shard(self, db):
        counts = db.server.per_shard_tuple_counts("Emp")
        assert set(counts) == {"shard-0", "shard-1", "shard-2"}
        assert sum(counts.values()) == len(ROWS)
        assert all(count > 0 for count in counts.values())

    def test_merged_select_finds_matches_on_every_shard(self, db):
        outcome = db.select("SELECT * FROM Emp WHERE dept = 'HR'")
        assert len(outcome.relation) == 15

    def test_insert_lands_on_the_ring_assigned_shard(self, db):
        db.insert("Emp", {"name": "Zoe", "dept": "NEW", "salary": 1})
        assert len(db.select(Selection.equals("dept", "NEW"), table="Emp").relation) == 1
        # every physically stored tuple sits exactly where the ring says
        router = db.server
        for shard_id in router.shard_ids:
            for t in router.shard(shard_id).stored_relation("Emp"):
                assert router.shard_for(t.tuple_id) == shard_id

    def test_delete_spans_shards_and_counts_truthfully(self, db):
        deleted = db.delete("SELECT * FROM Emp WHERE dept = 'HR'")
        assert deleted == 15
        assert db.count("Emp") == 15
        assert len(db.select(Selection.equals("dept", "HR"), table="Emp").relation) == 0

    def test_update_keeps_placement_consistent(self, db):
        updated = db.update(Selection.equals("name", "emp3"), {"salary": 9}, table="Emp")
        assert updated == 1
        router = db.server
        for shard_id in router.shard_ids:
            for t in router.shard(shard_id).stored_relation("Emp"):
                assert router.shard_for(t.tuple_id) == shard_id

    def test_batch_queries_merge_element_wise(self, db):
        outcomes = db.select_many(
            [Selection.equals("dept", "HR"), Selection.equals("dept", "IT")],
            table="Emp",
        )
        assert [len(o.relation) for o in outcomes] == [15, 15]

    def test_stored_relation_reassembles_the_fleet(self, db):
        assert len(db.server.stored_relation("Emp")) == len(ROWS)
        assert len(db.retrieve_all("Emp")) == len(ROWS)

    def test_drop_removes_the_relation_everywhere(self, db, backends):
        db.drop_table("Emp")
        for backend in backends:
            assert backend.relation_names == ()


class TestDuckType:
    def test_version_intersection(self, backends):
        class V1Only(OutsourcedDatabaseServer):
            SUPPORTED_PROTOCOL_VERSIONS = (PROTOCOL_V1,)

        full = ShardRouter(backends)
        assert full.supported_protocol_versions == (PROTOCOL_V1, PROTOCOL_V2, PROTOCOL_V3)
        mixed = ShardRouter([OutsourcedDatabaseServer(), V1Only()])
        assert mixed.supported_protocol_versions == (PROTOCOL_V1,)

    def test_legacy_outsourcing_client_works_over_a_cluster(
        self, employee_relation, swp_dph
    ):
        router = ShardRouter([OutsourcedDatabaseServer(), OutsourcedDatabaseServer()])
        client = OutsourcingClient(swp_dph, router, relation_name="Legacy")
        client.outsource(employee_relation)
        assert len(client.select(Selection.equals("dept", "HR")).relation) == 2
        counts = router.per_shard_tuple_counts("Legacy")
        assert sum(counts.values()) == len(employee_relation)

    def test_relation_names_unions_shards(self, db):
        assert db.server.relation_names == ("Emp",)

    def test_unknown_relation_errors_like_a_server(self, db):
        with pytest.raises(DatabaseError):
            db.count("Nope")


class TestPartialFailure:
    def _cluster(self, policy):
        shards = [FlakyServer(), FlakyServer(), FlakyServer()]
        router = ShardRouter(shards, policy=policy)
        db = EncryptedDatabase.open(server=router)
        db.create_table(EMP_DECL, rows=ROWS)
        return db, router, shards

    def test_fail_fast_read_surfaces_the_failure(self):
        db, router, shards = self._cluster("fail_fast")
        shards[1].down = True
        with pytest.raises(DatabaseError, match="shard is down"):
            db.select("SELECT * FROM Emp WHERE dept = 'HR'")

    def test_degraded_read_serves_the_survivors(self):
        db, router, shards = self._cluster(DEGRADED)
        full = len(db.select("SELECT * FROM Emp WHERE dept = 'HR'").relation)
        assert full == 15
        handle = db.table("Emp")
        hr_on_lost_shard = sum(
            1
            for t in shards[1].stored_relation("Emp")
            if handle.scheme.decrypt_tuple(t)["dept"] == "HR"
        )
        assert hr_on_lost_shard > 0  # the outage actually hides matches
        shards[1].down = True
        partial = db.select("SELECT * FROM Emp WHERE dept = 'HR'")
        assert len(partial.relation) == full - hr_on_lost_shard
        assert router.stats.degraded_reads >= 1
        assert router.stats.last_missing_shard_ids == ("shard-1",)

    def test_degraded_with_every_shard_down_still_fails(self):
        db, router, shards = self._cluster(DEGRADED)
        for shard in shards:
            shard.down = True
        with pytest.raises(DatabaseError):
            db.select("SELECT * FROM Emp WHERE dept = 'HR'")

    def test_writes_are_always_fail_fast(self):
        db, router, shards = self._cluster(DEGRADED)
        # ids physically owned by shard-2, captured before the outage
        lost_ids = [t.tuple_id for t in shards[2].stored_relation("Emp")]
        assert lost_ids
        shards[2].down = True
        with pytest.raises(ClusterError):
            router.delete_tuples("Emp", lost_ids)
        # a degraded *read* of the same table still works meanwhile
        assert db.select("SELECT * FROM Emp WHERE dept = 'IT'").relation is not None

    def test_insert_to_a_down_shard_fails_loudly(self):
        db, router, shards = self._cluster(DEGRADED)
        for shard in shards:
            shard.down = True
        with pytest.raises(DatabaseError):
            db.insert("Emp", {"name": "X", "dept": "HR", "salary": 1})


def _copy_holders(router, name):
    """``tuple_id -> holder shard ids`` from the physical per-shard stores."""
    holders = {}
    for shard_id in router.shard_ids:
        for t in router.shard(shard_id).stored_relation(name):
            holders.setdefault(t.tuple_id, set()).add(shard_id)
    return holders


def _assert_fully_replicated(router, name):
    """Every tuple is stored on exactly its R ring successors."""
    holders = _copy_holders(router, name)
    assert holders, "relation is empty"
    for tuple_id, shard_ids in holders.items():
        assert shard_ids == set(router.replica_shards(tuple_id))


class TestReplication:
    def _cluster(self, shard_count=3, replicas=2, policy="fail_fast"):
        shards = [FlakyServer() for _ in range(shard_count)]
        router = ShardRouter(shards, replicas=replicas, policy=policy)
        db = EncryptedDatabase.open(server=router)
        db.create_table(EMP_DECL, rows=ROWS)
        return db, router, shards

    def test_store_places_every_tuple_on_its_replica_set(self):
        db, router, _ = self._cluster()
        assert router.replication == 2
        _assert_fully_replicated(router, "Emp")
        # physical copies are 2x the logical relation
        physical = sum(router.per_shard_tuple_counts("Emp").values())
        assert physical == 2 * len(ROWS)

    def test_insert_writes_all_replicas(self):
        db, router, _ = self._cluster()
        db.insert("Emp", {"name": "Zoe", "dept": "NEW", "salary": 1})
        _assert_fully_replicated(router, "Emp")
        assert len(db.select(Selection.equals("dept", "NEW"), table="Emp").relation) == 1

    def test_queries_are_duplicate_free_with_all_shards_up(self):
        db, router, _ = self._cluster()
        outcome = db.select("SELECT * FROM Emp WHERE dept = 'HR'")
        assert len(outcome.relation) == 15  # 2 physical copies each, answered once
        assert db.count("Emp") == len(ROWS)
        assert len(db.server.stored_relation("Emp")) == len(ROWS)

    def test_reads_fail_over_when_one_replica_is_down(self):
        db, router, shards = self._cluster()  # fail_fast policy!
        shards[1].down = True
        outcome = db.select("SELECT * FROM Emp WHERE dept = 'HR'")
        assert len(outcome.relation) == 15  # complete, not degraded
        assert router.stats.failover_reads >= 1
        assert router.stats.degraded_reads == 0
        assert router.stats.last_failover_shard_ids == ("shard-1",)

    def test_batch_reads_fail_over_too(self):
        db, router, shards = self._cluster()
        shards[2].down = True
        outcomes = db.select_many(
            [Selection.equals("dept", "HR"), Selection.equals("dept", "IT")],
            table="Emp",
        )
        assert [len(o.relation) for o in outcomes] == [15, 15]
        assert router.stats.degraded_reads == 0

    def test_stored_relation_and_count_survive_one_dead_shard(self):
        db, router, shards = self._cluster()
        shards[0].down = True
        assert len(router.stored_relation("Emp")) == len(ROWS)
        assert router.tuple_count("Emp") == len(ROWS)
        assert len(db.retrieve_all("Emp")) == len(ROWS)

    def test_too_many_failures_surface_the_right_shards(self):
        db, router, shards = self._cluster()
        shards[0].down = True
        shards[1].down = True  # 2 dead >= R=2: coverage is broken
        with pytest.raises(ShardFailedError) as excinfo:
            router.execute_query(
                "Emp",
                db.table("Emp").scheme.encrypt_query(Selection.equals("dept", "HR")),
            )
        assert excinfo.value.failed_shard_ids == ("shard-0", "shard-1")

    def test_replicated_writes_fail_fast_when_a_replica_is_down(self):
        db, router, shards = self._cluster()
        handle = db.table("Emp")
        encrypted = handle.scheme.encrypt_tuple(
            db._make_tuple(handle.schema, {"name": "X", "dept": "HR", "salary": 1})
        )
        victim = router.replica_shards(encrypted.tuple_id)[1]
        router.shard(victim).down = True
        with pytest.raises(ClusterError):
            router.insert_tuple("Emp", encrypted)
        router.shard(victim).down = False
        router.insert_tuple("Emp", encrypted)
        _assert_fully_replicated(router, "Emp")

    def test_deletes_fail_fast_and_count_logically(self):
        db, router, shards = self._cluster()
        deleted = db.delete("SELECT * FROM Emp WHERE dept = 'HR'")
        assert deleted == 15  # logical, not 30 physical copies
        assert db.count("Emp") == 15
        shards[2].down = True
        with pytest.raises(DatabaseError):
            db.delete("SELECT * FROM Emp WHERE dept = 'IT'")

    def test_update_keeps_full_replication(self):
        db, router, _ = self._cluster()
        assert db.update(Selection.equals("name", "emp3"), {"salary": 9}, table="Emp") == 1
        _assert_fully_replicated(router, "Emp")
        assert db.count("Emp") == len(ROWS)

    def test_remove_shard_restores_the_replication_factor(self):
        db, router, _ = self._cluster(shard_count=3, replicas=2)
        report = router.remove_shard("shard-1")
        assert report.moved > 0
        assert router.shard_ids == ("shard-0", "shard-2")
        _assert_fully_replicated(router, "Emp")
        assert db.count("Emp") == len(ROWS)
        assert len(db.select("SELECT * FROM Emp WHERE dept = 'HR'").relation) == 15

    def test_add_shard_rebalances_replica_sets(self):
        db, router, _ = self._cluster(shard_count=3, replicas=2)
        report = router.add_shard(FlakyServer())
        assert report is not None
        _assert_fully_replicated(router, "Emp")
        assert router.rebalance().moved == 0  # converged
        assert db.count("Emp") == len(ROWS)

    def test_removal_below_the_replication_factor_is_refused(self):
        db, router, _ = self._cluster(shard_count=2, replicas=2)
        with pytest.raises(ClusterError, match="replication factor"):
            router.remove_shard("shard-0")

    def test_full_failover_round_trip_after_losing_a_shard(self):
        # the acceptance scenario: 3 shards, replicas=2, one dies mid-workload
        db, router, shards = self._cluster(shard_count=3, replicas=2)
        before = len(db.select("SELECT * FROM Emp WHERE dept = 'IT'").relation)
        shards[0].down = True
        after = db.select("SELECT * FROM Emp WHERE dept = 'IT'")
        assert len(after.relation) == before == 15
        assert router.stats.degraded_reads == 0
        assert router.stats.failover_reads >= 1


class TestDuplicateSafety:
    """Crash-left duplicates must never change query multiplicities."""

    def _duplicated_cluster(self, secret_key, rng):
        backends = [OutsourcedDatabaseServer() for _ in range(2)]
        db = EncryptedDatabase.open(secret_key, shards=backends, rng=rng)
        db.create_table(EMP_DECL, rows=ROWS)
        router = db.server
        # simulate the rebalancer crashing mid-migration: the insert at the
        # new owner happened, the delete at the old owner did not
        victim = router.shard("shard-0").stored_relation("Emp").encrypted_tuples[0]
        other = "shard-1" if router.shard_for(victim.tuple_id) == "shard-0" else "shard-0"
        router.shard(other).insert_tuple("Emp", victim)
        return db, router, victim

    def test_query_returns_exactly_one_copy(self, secret_key, rng):
        db, router, victim = self._duplicated_cluster(secret_key, rng)
        plaintext = db.table("Emp").scheme.decrypt_tuple(victim)
        outcome = db.select(Selection.equals("name", plaintext["name"]), table="Emp")
        assert len(outcome.relation) == 1

    def test_counts_do_not_inflate(self, secret_key, rng):
        db, router, _ = self._duplicated_cluster(secret_key, rng)
        physical = sum(router.per_shard_tuple_counts("Emp").values())
        assert physical == len(ROWS) + 1  # the duplicate is really there
        assert db.count("Emp") == len(ROWS)  # ...and counted once
        assert len(router.stored_relation("Emp")) == len(ROWS)
        assert len(db.retrieve_all("Emp")) == len(ROWS)

    def test_delete_kills_every_copy_and_counts_once(self, secret_key, rng):
        db, router, victim = self._duplicated_cluster(secret_key, rng)
        plaintext = db.table("Emp").scheme.decrypt_tuple(victim)
        deleted = db.delete(Selection.equals("name", plaintext["name"]), table="Emp")
        assert deleted == 1
        assert sum(router.per_shard_tuple_counts("Emp").values()) == len(ROWS) - 1
        assert db.count("Emp") == len(ROWS) - 1


class TestStatsThreadSafety:
    def test_concurrent_mutations_are_not_lost(self):
        stats = ClusterStats()
        rounds = 500
        snapshots: list[dict] = []

        def hammer(shard_id: str):
            for _ in range(rounds):
                stats.record_scatter_read()
                stats.record_routed_insert()
                stats.record_degraded_read((shard_id,))
                stats.record_failover_read((shard_id,))
                snapshots.append(stats.as_dict())

        threads = [
            threading.Thread(target=hammer, args=(f"s{i}",)) for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30)
        assert stats.scatter_reads == 8 * rounds
        assert stats.routed_inserts == 8 * rounds
        assert stats.degraded_reads == 8 * rounds
        assert stats.failover_reads == 8 * rounds
        for snapshot in snapshots:  # every snapshot is internally consistent
            assert snapshot["degraded_reads"] <= snapshot["scatter_reads"] * 2
            assert tuple(snapshot["last_missing_shard_ids"]) != ()


class TestConstruction:
    def test_needs_at_least_one_shard(self):
        with pytest.raises(ClusterError):
            ShardRouter([])

    def test_shard_id_count_must_match(self):
        with pytest.raises(ClusterError):
            ShardRouter([OutsourcedDatabaseServer()], shard_ids=["a", "b"])

    def test_duplicate_shard_ids_rejected(self):
        with pytest.raises(ClusterError):
            ShardRouter(
                [OutsourcedDatabaseServer(), OutsourcedDatabaseServer()],
                shard_ids=["a", "a"],
            )

    def test_unknown_policy_rejected(self):
        with pytest.raises(ClusterError):
            ShardRouter([OutsourcedDatabaseServer()], policy="hope")

    def test_parse_cluster_url(self):
        assert parse_cluster_url("cluster://h1:1,h2:2") == (
            "tcp://h1:1", "tcp://h2:2"
        )
        with pytest.raises(ClusterError):
            parse_cluster_url("tcp://h1:1")
        with pytest.raises(ClusterError):
            parse_cluster_url("cluster://")
        with pytest.raises(ClusterError):
            parse_cluster_url("cluster://h1:1,h1:1")
        with pytest.raises(ClusterError):
            parse_cluster_url("cluster://h1:notaport")

    def test_parse_cluster_options(self):
        urls, options = parse_cluster_options("cluster://h1:1,h2:2?replicas=2")
        assert urls == ("tcp://h1:1", "tcp://h2:2")
        assert options == {"replicas": 2}
        assert parse_cluster_options("cluster://h1:1")[1] == {}
        assert parse_cluster_options("cluster://h1:1?cache=1")[1] == {"cache": True}
        with pytest.raises(ClusterError, match="unknown cluster URL option"):
            parse_cluster_options("cluster://h1:1?quorum=2")
        with pytest.raises(ClusterError, match="integer"):
            parse_cluster_options("cluster://h1:1?replicas=two")

    def test_option_typos_rejected_with_supported_list(self):
        # A silently dropped ?asnyc=1 would quietly run the session on the
        # wrong transport -- the error must name the typo and the options.
        with pytest.raises(
            ClusterError,
            match=r"unknown cluster URL option 'asnyc' "
            r"\(supported: replicas, async, index, cache\)",
        ):
            parse_cluster_options("cluster://h1:1?asnyc=1")
        from repro.net.client import RemoteError, parse_tcp_options

        with pytest.raises(
            RemoteError,
            match=r"unknown provider URL option 'asnyc' "
            r"\(supported: async, index, cache\)",
        ):
            parse_tcp_options("tcp://h1:1?asnyc=1")

    def test_connect_surfaces_url_typos_as_database_errors(self):
        with pytest.raises(DatabaseError, match="unknown provider URL option"):
            EncryptedDatabase.connect("tcp://h1:1?asnyc=1")
        with pytest.raises(DatabaseError, match="unknown cluster URL option"):
            EncryptedDatabase.connect("cluster://h1:1?asnyc=1")
        with pytest.raises(DatabaseError, match="takes? no options"):
            EncryptedDatabase.connect("cluster+file:///fleet.json?cache=1")

    def test_manifest_url_rejects_query_and_fragment(self):
        from repro.cluster.manifest import ManifestError, parse_cluster_file_url

        assert str(parse_cluster_file_url("cluster+file:///a/fleet.json")).endswith(
            "fleet.json"
        )
        with pytest.raises(ManifestError, match="query or fragment"):
            parse_cluster_file_url("cluster+file:///a/fleet.json?async=1")
        with pytest.raises(ManifestError, match="query or fragment"):
            parse_cluster_file_url("cluster+file:///a/fleet.json#frag")

    def test_replication_factor_validation(self):
        with pytest.raises(ClusterError, match="replication factor"):
            ShardRouter([OutsourcedDatabaseServer()], replicas=0)
        with pytest.raises(ClusterError, match="needs at least"):
            ShardRouter(
                [OutsourcedDatabaseServer(), OutsourcedDatabaseServer()], replicas=3
            )
        with pytest.raises(ClusterError, match="conflicting replication"):
            ShardRouter.connect("cluster://h1:1,h2:2?replicas=2", replicas=1)

    def test_session_replicas_requires_shards(self, secret_key):
        with pytest.raises(DatabaseError, match="sharded sessions only"):
            EncryptedDatabase.open(secret_key, replicas=2)
        db = EncryptedDatabase.open(
            secret_key,
            shards=[OutsourcedDatabaseServer(), OutsourcedDatabaseServer()],
            replicas=2,
        )
        assert db.server.replication == 2
