"""ShardRouter: CRUD routing, merging, partial failure, duck-type fidelity."""

from __future__ import annotations

import pytest

from repro.api import DatabaseError, EncryptedDatabase
from repro.cluster import (
    ClusterError,
    DEGRADED,
    ShardFailedError,
    ShardRouter,
    parse_cluster_url,
)
from repro.outsourcing import OutsourcedDatabaseServer, OutsourcingClient
from repro.outsourcing.protocol import PROTOCOL_V1, PROTOCOL_V2
from repro.relational import Selection

EMP_DECL = "Emp(name:string[14], dept:string[5], salary:int[6])"
ROWS = [(f"emp{i}", "HR" if i % 2 else "IT", 1000 + i) for i in range(30)]


class FlakyServer(OutsourcedDatabaseServer):
    """A shard that can be switched off to exercise partial-failure paths."""

    def __init__(self):
        super().__init__()
        self.down = False

    def _check(self):
        if self.down:
            raise ConnectionError("shard is down")

    def handle_message(self, raw: bytes) -> bytes:
        self._check()
        return super().handle_message(raw)

    def execute_query(self, name, encrypted_query):
        self._check()
        return super().execute_query(name, encrypted_query)

    def insert_tuple(self, name, encrypted_tuple):
        self._check()
        return super().insert_tuple(name, encrypted_tuple)

    def delete_tuples(self, name, tuple_ids):
        self._check()
        return super().delete_tuples(name, tuple_ids)


@pytest.fixture
def backends():
    return [OutsourcedDatabaseServer() for _ in range(3)]


@pytest.fixture
def db(backends, secret_key, rng):
    session = EncryptedDatabase.open(secret_key, shards=backends, rng=rng)
    session.create_table(EMP_DECL, rows=ROWS)
    return session


class TestRouting:
    def test_tuples_spread_across_every_shard(self, db):
        counts = db.server.per_shard_tuple_counts("Emp")
        assert set(counts) == {"shard-0", "shard-1", "shard-2"}
        assert sum(counts.values()) == len(ROWS)
        assert all(count > 0 for count in counts.values())

    def test_merged_select_finds_matches_on_every_shard(self, db):
        outcome = db.select("SELECT * FROM Emp WHERE dept = 'HR'")
        assert len(outcome.relation) == 15

    def test_insert_lands_on_the_ring_assigned_shard(self, db):
        db.insert("Emp", {"name": "Zoe", "dept": "NEW", "salary": 1})
        assert len(db.select(Selection.equals("dept", "NEW"), table="Emp").relation) == 1
        # every physically stored tuple sits exactly where the ring says
        router = db.server
        for shard_id in router.shard_ids:
            for t in router.shard(shard_id).stored_relation("Emp"):
                assert router.shard_for(t.tuple_id) == shard_id

    def test_delete_spans_shards_and_counts_truthfully(self, db):
        deleted = db.delete("SELECT * FROM Emp WHERE dept = 'HR'")
        assert deleted == 15
        assert db.count("Emp") == 15
        assert len(db.select(Selection.equals("dept", "HR"), table="Emp").relation) == 0

    def test_update_keeps_placement_consistent(self, db):
        updated = db.update(Selection.equals("name", "emp3"), {"salary": 9}, table="Emp")
        assert updated == 1
        router = db.server
        for shard_id in router.shard_ids:
            for t in router.shard(shard_id).stored_relation("Emp"):
                assert router.shard_for(t.tuple_id) == shard_id

    def test_batch_queries_merge_element_wise(self, db):
        outcomes = db.select_many(
            [Selection.equals("dept", "HR"), Selection.equals("dept", "IT")],
            table="Emp",
        )
        assert [len(o.relation) for o in outcomes] == [15, 15]

    def test_stored_relation_reassembles_the_fleet(self, db):
        assert len(db.server.stored_relation("Emp")) == len(ROWS)
        assert len(db.retrieve_all("Emp")) == len(ROWS)

    def test_drop_removes_the_relation_everywhere(self, db, backends):
        db.drop_table("Emp")
        for backend in backends:
            assert backend.relation_names == ()


class TestDuckType:
    def test_version_intersection(self, backends):
        class V1Only(OutsourcedDatabaseServer):
            SUPPORTED_PROTOCOL_VERSIONS = (PROTOCOL_V1,)

        full = ShardRouter(backends)
        assert full.supported_protocol_versions == (PROTOCOL_V1, PROTOCOL_V2)
        mixed = ShardRouter([OutsourcedDatabaseServer(), V1Only()])
        assert mixed.supported_protocol_versions == (PROTOCOL_V1,)

    def test_legacy_outsourcing_client_works_over_a_cluster(
        self, employee_relation, swp_dph
    ):
        router = ShardRouter([OutsourcedDatabaseServer(), OutsourcedDatabaseServer()])
        client = OutsourcingClient(swp_dph, router, relation_name="Legacy")
        client.outsource(employee_relation)
        assert len(client.select(Selection.equals("dept", "HR")).relation) == 2
        counts = router.per_shard_tuple_counts("Legacy")
        assert sum(counts.values()) == len(employee_relation)

    def test_relation_names_unions_shards(self, db):
        assert db.server.relation_names == ("Emp",)

    def test_unknown_relation_errors_like_a_server(self, db):
        with pytest.raises(DatabaseError):
            db.count("Nope")


class TestPartialFailure:
    def _cluster(self, policy):
        shards = [FlakyServer(), FlakyServer(), FlakyServer()]
        router = ShardRouter(shards, policy=policy)
        db = EncryptedDatabase.open(server=router)
        db.create_table(EMP_DECL, rows=ROWS)
        return db, router, shards

    def test_fail_fast_read_surfaces_the_failure(self):
        db, router, shards = self._cluster("fail_fast")
        shards[1].down = True
        with pytest.raises(DatabaseError, match="shard is down"):
            db.select("SELECT * FROM Emp WHERE dept = 'HR'")

    def test_degraded_read_serves_the_survivors(self):
        db, router, shards = self._cluster(DEGRADED)
        full = len(db.select("SELECT * FROM Emp WHERE dept = 'HR'").relation)
        assert full == 15
        handle = db.table("Emp")
        hr_on_lost_shard = sum(
            1
            for t in shards[1].stored_relation("Emp")
            if handle.scheme.decrypt_tuple(t)["dept"] == "HR"
        )
        assert hr_on_lost_shard > 0  # the outage actually hides matches
        shards[1].down = True
        partial = db.select("SELECT * FROM Emp WHERE dept = 'HR'")
        assert len(partial.relation) == full - hr_on_lost_shard
        assert router.stats.degraded_reads >= 1
        assert router.stats.last_missing_shard_ids == ("shard-1",)

    def test_degraded_with_every_shard_down_still_fails(self):
        db, router, shards = self._cluster(DEGRADED)
        for shard in shards:
            shard.down = True
        with pytest.raises(DatabaseError):
            db.select("SELECT * FROM Emp WHERE dept = 'HR'")

    def test_writes_are_always_fail_fast(self):
        db, router, shards = self._cluster(DEGRADED)
        # ids physically owned by shard-2, captured before the outage
        lost_ids = [t.tuple_id for t in shards[2].stored_relation("Emp")]
        assert lost_ids
        shards[2].down = True
        with pytest.raises(ClusterError):
            router.delete_tuples("Emp", lost_ids)
        # a degraded *read* of the same table still works meanwhile
        assert db.select("SELECT * FROM Emp WHERE dept = 'IT'").relation is not None

    def test_insert_to_a_down_shard_fails_loudly(self):
        db, router, shards = self._cluster(DEGRADED)
        for shard in shards:
            shard.down = True
        with pytest.raises(DatabaseError):
            db.insert("Emp", {"name": "X", "dept": "HR", "salary": 1})


class TestConstruction:
    def test_needs_at_least_one_shard(self):
        with pytest.raises(ClusterError):
            ShardRouter([])

    def test_shard_id_count_must_match(self):
        with pytest.raises(ClusterError):
            ShardRouter([OutsourcedDatabaseServer()], shard_ids=["a", "b"])

    def test_duplicate_shard_ids_rejected(self):
        with pytest.raises(ClusterError):
            ShardRouter(
                [OutsourcedDatabaseServer(), OutsourcedDatabaseServer()],
                shard_ids=["a", "a"],
            )

    def test_unknown_policy_rejected(self):
        with pytest.raises(ClusterError):
            ShardRouter([OutsourcedDatabaseServer()], policy="hope")

    def test_parse_cluster_url(self):
        assert parse_cluster_url("cluster://h1:1,h2:2") == (
            "tcp://h1:1", "tcp://h2:2"
        )
        with pytest.raises(ClusterError):
            parse_cluster_url("tcp://h1:1")
        with pytest.raises(ClusterError):
            parse_cluster_url("cluster://")
        with pytest.raises(ClusterError):
            parse_cluster_url("cluster://h1:1,h1:1")
        with pytest.raises(ClusterError):
            parse_cluster_url("cluster://h1:notaport")
