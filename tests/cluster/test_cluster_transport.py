"""``cluster://`` sessions over real sockets, and the facade's cluster knobs."""

from __future__ import annotations

import pytest

from repro.api import DatabaseError, EncryptedDatabase
from repro.net import ThreadedTcpServer
from repro.outsourcing import OutsourcedDatabaseServer
from repro.relational import Selection

EMP_DECL = "Emp(name:string[14], dept:string[5], salary:int[6])"
ROWS = [(f"emp{i}", "HR" if i % 2 else "IT", 1000 + i) for i in range(24)]


@pytest.fixture
def fleet():
    with ThreadedTcpServer() as one, ThreadedTcpServer() as two:
        yield one, two


def _url(fleet) -> str:
    one, two = fleet
    return f"cluster://127.0.0.1:{one.port},127.0.0.1:{two.port}"


class TestClusterUrlSessions:
    def test_crud_round_trip_hits_both_shards(self, fleet, secret_key, rng):
        with EncryptedDatabase.connect(_url(fleet), secret_key, rng=rng) as db:
            db.create_table(EMP_DECL, rows=ROWS)
            counts = db.server.per_shard_tuple_counts("Emp")
            assert sum(counts.values()) == len(ROWS)
            assert all(count > 0 for count in counts.values())
            assert len(db.select("SELECT * FROM Emp WHERE dept = 'HR'").relation) == 12
            db.insert("Emp", {"name": "Zoe", "dept": "HR", "salary": 1})
            assert db.delete(Selection.equals("dept", "IT"), table="Emp") == 12
            assert db.count("Emp") == 13
            db.drop_table("Emp")

    def test_mixed_fleet_of_sockets_and_objects(self, fleet, secret_key, rng):
        one, _ = fleet
        local = OutsourcedDatabaseServer()
        db = EncryptedDatabase.open(
            secret_key, shards=[f"tcp://127.0.0.1:{one.port}", local], rng=rng
        )
        try:
            db.create_table(EMP_DECL, rows=ROWS)
            assert db.count("Emp") == len(ROWS)
            assert len(db.select("SELECT * FROM Emp WHERE dept = 'IT'").relation) == 12
            # the in-process backend really holds its share
            assert local.tuple_count("Emp") > 0
        finally:
            db.server.drop_relation("Emp")
            db.close()

    def test_mid_session_shard_growth_over_sockets(self, fleet, secret_key, rng):
        one, two = fleet
        with EncryptedDatabase.connect(
            f"cluster://127.0.0.1:{one.port}", secret_key, rng=rng
        ) as db:
            db.create_table(EMP_DECL, rows=ROWS)
            report = db.server.add_shard(f"tcp://127.0.0.1:{two.port}")
            assert report.moved > 0
            assert len(db.select("SELECT * FROM Emp WHERE dept = 'HR'").relation) == 12
            db.drop_table("Emp")

    def test_unreachable_shard_fails_the_connect(self, fleet):
        one, _ = fleet
        with pytest.raises(DatabaseError, match="cannot connect"):
            EncryptedDatabase.connect(
                f"cluster://127.0.0.1:{one.port},127.0.0.1:1", timeout=2.0
            )


class TestFacadeKnobs:
    def test_policy_rejected_for_plain_tcp(self, fleet):
        one, _ = fleet
        with pytest.raises(DatabaseError, match="cluster:// URLs only"):
            EncryptedDatabase.connect(
                f"tcp://127.0.0.1:{one.port}", policy="degraded"
            )

    def test_policy_rejected_for_server_objects(self):
        with pytest.raises(DatabaseError, match="cluster:// URLs only"):
            EncryptedDatabase.connect(OutsourcedDatabaseServer(), policy="degraded")

    def test_shards_exclusive_with_server_and_storage(self, secret_key):
        from repro.outsourcing import InMemoryStorageBackend

        with pytest.raises(DatabaseError):
            EncryptedDatabase.open(
                secret_key,
                server=OutsourcedDatabaseServer(),
                shards=[OutsourcedDatabaseServer()],
            )
        with pytest.raises(DatabaseError):
            EncryptedDatabase.open(
                secret_key,
                storage=InMemoryStorageBackend(),
                shards=[OutsourcedDatabaseServer()],
            )

    def test_bad_cluster_url_is_a_database_error(self):
        with pytest.raises(DatabaseError):
            EncryptedDatabase.connect("cluster://")

    def test_degraded_policy_reaches_the_router(self, fleet, secret_key):
        with EncryptedDatabase.connect(
            _url(fleet), secret_key, policy="degraded", shard_timeout=30.0
        ) as db:
            assert db.server.policy == "degraded"

    def test_url_replicas_reach_the_router(self, fleet, secret_key):
        with EncryptedDatabase.connect(
            _url(fleet) + "?replicas=2", secret_key
        ) as db:
            assert db.server.replication == 2

    def test_replicas_rejected_for_plain_tcp(self, fleet):
        one, _ = fleet
        with pytest.raises(DatabaseError, match="cluster:// URLs only"):
            EncryptedDatabase.connect(f"tcp://127.0.0.1:{one.port}", replicas=2)


class TestReplicatedClusterOverSockets:
    def test_killing_one_provider_keeps_reads_complete(self, secret_key, rng):
        with ThreadedTcpServer() as one, ThreadedTcpServer() as two:
            three = ThreadedTcpServer().start()
            url = (
                f"cluster://127.0.0.1:{one.port},127.0.0.1:{two.port},"
                f"127.0.0.1:{three.port}?replicas=2"
            )
            with EncryptedDatabase.connect(
                url, secret_key, rng=rng, timeout=10.0
            ) as db:
                db.create_table(EMP_DECL, rows=ROWS)
                assert len(db.select("SELECT * FROM Emp WHERE dept = 'HR'").relation) == 12
                three.stop()  # a provider dies mid-workload
                outcome = db.select("SELECT * FROM Emp WHERE dept = 'HR'")
                assert len(outcome.relation) == 12  # complete, not partial
                assert db.count("Emp") == len(ROWS)
                stats = db.server.stats
                assert stats.failover_reads >= 1
                assert stats.degraded_reads == 0
