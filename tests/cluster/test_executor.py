"""Scatter-gather executor: concurrency, timeouts, partial-failure policies."""

from __future__ import annotations

import threading
import time

import pytest

from repro.cluster.executor import (
    ClusterError,
    DEGRADED,
    FAIL_FAST,
    ScatterGatherExecutor,
    ShardFailedError,
    ShardOutcome,
    ShardTimeoutError,
    resolve_outcomes,
)


@pytest.fixture
def executor():
    ex = ScatterGatherExecutor(max_workers=4)
    yield ex
    ex.close()


class TestScatter:
    def test_results_keep_scatter_order(self, executor):
        calls = [(f"s{i}", (lambda v: lambda: v)(i)) for i in range(4)]
        outcomes = executor.scatter(calls)
        assert [o.shard_id for o in outcomes] == ["s0", "s1", "s2", "s3"]
        assert [o.value for o in outcomes] == [0, 1, 2, 3]
        assert all(o.ok for o in outcomes)

    def test_calls_actually_overlap(self, executor):
        barrier = threading.Barrier(3, timeout=5)

        def rendezvous():
            barrier.wait()  # deadlocks unless all three run concurrently
            return True

        outcomes = executor.scatter([(f"s{i}", rendezvous) for i in range(3)])
        assert all(o.ok for o in outcomes)

    def test_exceptions_become_outcomes(self, executor):
        def boom():
            raise RuntimeError("shard exploded")

        outcomes = executor.scatter([("ok", lambda: 1), ("bad", boom)])
        assert outcomes[0].ok and outcomes[0].value == 1
        assert not outcomes[1].ok
        assert "shard exploded" in str(outcomes[1].error)

    def test_per_shard_timeout(self):
        executor = ScatterGatherExecutor(max_workers=2, timeout=0.05)
        try:
            outcomes = executor.scatter(
                [("fast", lambda: "x"), ("slow", lambda: time.sleep(2.0))]
            )
        finally:
            executor.close()
        assert outcomes[0].ok
        assert isinstance(outcomes[1].error, ShardTimeoutError)

    def test_each_slow_shard_gets_its_full_budget(self):
        # Regression: the timeout used to be one shared deadline burned from
        # scatter start, so with several slow-but-in-budget shards the later
        # ones inherited ~0s and were misreported as timed out.  Two shards
        # serialized on one worker each take 0.3s against a 0.45s per-shard
        # budget: both must succeed even though the second finishes 0.6s
        # after scatter start.
        executor = ScatterGatherExecutor(max_workers=1, timeout=0.45)

        def slow():
            time.sleep(0.3)
            return "done"

        try:
            outcomes = executor.scatter([("s1", slow), ("s2", slow)])
        finally:
            executor.close()
        assert [o.ok for o in outcomes] == [True, True], [
            (o.shard_id, o.error) for o in outcomes
        ]

    def test_a_genuinely_slow_shard_still_times_out_behind_a_queue(self):
        executor = ScatterGatherExecutor(max_workers=1, timeout=0.2)
        try:
            outcomes = executor.scatter(
                [("fast", lambda: "x"), ("slow", lambda: time.sleep(2.0))]
            )
        finally:
            executor.close()
        assert outcomes[0].ok
        assert isinstance(outcomes[1].error, ShardTimeoutError)


class TestPolicies:
    def _outcomes(self, *oks):
        return [
            ShardOutcome(shard_id=f"s{i}", value=i)
            if ok
            else ShardOutcome(shard_id=f"s{i}", error=RuntimeError(f"down {i}"))
            for i, ok in enumerate(oks)
        ]

    def test_all_ok_passes_both_policies(self):
        for policy in (FAIL_FAST, DEGRADED):
            result = resolve_outcomes("op", self._outcomes(True, True), policy=policy)
            assert result.values == (0, 1)
            assert not result.degraded

    def test_fail_fast_raises_on_any_failure(self):
        with pytest.raises(ShardFailedError) as excinfo:
            resolve_outcomes("op", self._outcomes(True, False), policy=FAIL_FAST)
        assert excinfo.value.failed_shard_ids == ("s1",)
        assert "down 1" in str(excinfo.value)

    def test_degraded_serves_the_survivors(self):
        result = resolve_outcomes(
            "op", self._outcomes(True, False, True), policy=DEGRADED
        )
        assert result.values == (0, 2)
        assert result.degraded
        assert result.missing_shard_ids == ("s1",)

    def test_degraded_still_fails_when_no_shard_answered(self):
        with pytest.raises(ShardFailedError):
            resolve_outcomes("op", self._outcomes(False, False), policy=DEGRADED)

    def test_unknown_policy_rejected(self):
        with pytest.raises(ClusterError):
            resolve_outcomes("op", self._outcomes(True), policy="optimistic")

    def test_gather_combines_scatter_and_policy(self, executor=None):
        executor = ScatterGatherExecutor(max_workers=2)
        try:
            with pytest.raises(ShardFailedError):
                executor.gather(
                    "op",
                    [("ok", lambda: 1), ("bad", lambda: 1 / 0)],
                    policy=FAIL_FAST,
                )
            result = executor.gather(
                "op",
                [("ok", lambda: 1), ("bad", lambda: 1 / 0)],
                policy=DEGRADED,
            )
            assert result.values == (1,)
            assert result.missing_shard_ids == ("bad",)
        finally:
            executor.close()
