"""The event-loop scatter path: pipelined fleets, timeouts, cancellation."""

from __future__ import annotations

import asyncio

import pytest
from gated_provider import GatedServer, store_empty

from repro.api import EncryptedDatabase
from repro.cluster import ShardRouter, ShardTimeoutError, scatter_async
from repro.cluster.executor import DEGRADED
from repro.net import EventLoopThread, ThreadedTcpServer
from repro.outsourcing import OutsourcedDatabaseServer

EMP_DECL = "Emp(name:string[14], dept:string[5], salary:int[6])"
ROWS = [(f"emp{i}", "HR" if i % 2 else "IT", 1000 + i) for i in range(24)]


@pytest.fixture
def fleet():
    with ThreadedTcpServer() as one, ThreadedTcpServer() as two:
        yield one, two


def async_url(fleet) -> str:
    one, two = fleet
    return f"cluster://127.0.0.1:{one.port},127.0.0.1:{two.port}?async=1"


class TestScatterAsync:
    def test_outcomes_in_scatter_order(self):
        with EventLoopThread() as loop_thread:
            async def value(n):
                return n

            outcomes = loop_thread.run(
                scatter_async([("a", lambda: value(1)), ("b", lambda: value(2))])
            )
        assert [(o.shard_id, o.value) for o in outcomes] == [("a", 1), ("b", 2)]
        assert all(o.ok for o in outcomes)

    def test_per_shard_exceptions_are_data(self):
        with EventLoopThread() as loop_thread:
            async def boom():
                raise RuntimeError("shard on fire")

            async def fine():
                return "ok"

            outcomes = loop_thread.run(
                scatter_async([("bad", boom), ("good", fine)])
            )
        assert not outcomes[0].ok
        assert isinstance(outcomes[0].error, RuntimeError)
        assert outcomes[1].value == "ok"

    def test_timeout_cancels_the_laggard_mid_flight(self):
        """Every shard gets its full budget concurrently; the laggard's
        coroutine is cancelled (not abandoned) on expiry."""
        cancelled = asyncio.Event()

        with EventLoopThread() as loop_thread:
            async def laggard():
                try:
                    await asyncio.sleep(30)
                except asyncio.CancelledError:
                    cancelled.set()
                    raise

            async def quick():
                return "fast"

            outcomes = loop_thread.run(
                scatter_async(
                    [("slow", laggard), ("fast", quick)], timeout=0.2
                )
            )
            assert isinstance(outcomes[0].error, ShardTimeoutError)
            assert outcomes[1].value == "fast"
            assert loop_thread.run(asyncio.wait_for(cancelled.wait(), 5)) or True


class TestAsyncTransportFleet:
    def test_crud_over_a_pipelined_fleet(self, fleet, secret_key, rng):
        with EncryptedDatabase.connect(async_url(fleet), secret_key, rng=rng) as db:
            router = db.server
            assert router.async_transport
            db.create_table(EMP_DECL, rows=ROWS)
            counts = router.per_shard_tuple_counts("Emp")
            assert sum(counts.values()) == len(ROWS)
            assert len(db.select("SELECT * FROM Emp WHERE dept = 'HR'").relation) == 12
            db.insert("Emp", {"name": "Zoe", "dept": "HR", "salary": 1})
            assert db.delete("SELECT * FROM Emp WHERE dept = 'IT'") == 12
            assert db.count("Emp") == 13
            stats = router.stats.as_dict()
            # The hot path (store, query, delete scatters) rode the loop.
            assert stats["loop_scatters"] >= 3
            db.drop_table("Emp")

    def test_mixed_fleet_falls_back_to_the_thread_pool(self, fleet, secret_key, rng):
        one, _ = fleet
        local = OutsourcedDatabaseServer()
        router = ShardRouter(
            [f"tcp://127.0.0.1:{one.port}", local], async_transport=True
        )
        db = EncryptedDatabase.open(secret_key, server=router, rng=rng)
        try:
            db.create_table(EMP_DECL, rows=ROWS)
            assert db.count("Emp") == len(ROWS)
            assert len(db.select("SELECT * FROM Emp WHERE dept = 'IT'").relation) == 12
            # The in-process shard cannot pipeline, so envelope scatters
            # stayed on the thread pool -- correct, just not loop-driven.
            assert router.stats.as_dict()["loop_scatters"] == 0
        finally:
            router.drop_relation("Emp")
            db.close()

    def test_replicated_failover_over_async_transport(self, secret_key, rng):
        with ThreadedTcpServer() as one, ThreadedTcpServer() as two:
            three = ThreadedTcpServer().start()
            url = (
                f"cluster://127.0.0.1:{one.port},127.0.0.1:{two.port},"
                f"127.0.0.1:{three.port}?replicas=2&async=1"
            )
            with EncryptedDatabase.connect(url, secret_key, rng=rng, timeout=10.0) as db:
                db.create_table(EMP_DECL, rows=ROWS)
                assert len(db.select("SELECT * FROM Emp WHERE dept = 'HR'").relation) == 12
                three.stop()  # a provider dies mid-workload
                outcome = db.select("SELECT * FROM Emp WHERE dept = 'HR'")
                assert len(outcome.relation) == 12  # complete, not partial
                assert db.count("Emp") == len(ROWS)
                stats = db.server.stats
                assert stats.failover_reads >= 1
                assert stats.degraded_reads == 0


class TestScatterTimeoutCancellation:
    def test_slow_shard_times_out_and_its_request_is_cancelled(self, secret_key, rng):
        """A gated shard exceeds its budget mid-scatter: the read degrades,
        the in-flight request is cancelled (orphaning its response), and
        the same connections keep serving once the shard recovers."""
        slow_database = GatedServer()
        with ThreadedTcpServer() as fast, ThreadedTcpServer(slow_database) as slow:
            url = f"cluster://127.0.0.1:{fast.port},127.0.0.1:{slow.port}?async=1"
            router = ShardRouter.connect(
                url, policy=DEGRADED, shard_timeout=0.5, timeout=10.0
            )
            db = EncryptedDatabase.open(secret_key, server=router, rng=rng)
            try:
                db.create_table(EMP_DECL, rows=ROWS)
                gate = slow_database.gate("Emp")
                outcome = db.select("SELECT * FROM Emp WHERE dept = 'HR'")
                # Complete on the fast shard's slice only: degraded read.
                assert 0 < len(outcome.relation) < 12
                assert router.stats.degraded_reads >= 1
                slow_shard_id = f"tcp://127.0.0.1:{slow.port}"
                assert router.stats.last_missing_shard_ids == (slow_shard_id,)
                # Release the gate: the orphaned late answer is dropped and
                # the *same* pipelined connection serves the next scatter.
                gate.set()
                del slow_database.gates["Emp"]
                outcome = db.select("SELECT * FROM Emp WHERE dept = 'HR'")
                assert len(outcome.relation) == 12
                assert router.shard(slow_shard_id).orphan_frames >= 1
            finally:
                gate.set()
                db.close()
