"""The router counts distinct ids via LIST_TUPLE_IDS, not full fetches."""

from __future__ import annotations

from repro.api import EncryptedDatabase
from repro.cluster import ShardRouter
from repro.outsourcing import OutsourcedDatabaseServer
from repro.outsourcing.protocol import MessageKind, MessageV2, decode_tuple_ids, parse_message

EMP_DECL = "Emp(name:string[14], dept:string[5], salary:int[6])"
ROWS = [(f"emp{i}", "HR" if i % 2 else "IT", 1000 + i) for i in range(24)]


class FetchCountingServer(OutsourcedDatabaseServer):
    """Counts the expensive full-relation fetches for the assertion below."""

    def __init__(self) -> None:
        super().__init__()
        self.full_fetches = 0

    def stored_relation(self, name):
        self.full_fetches += 1
        return super().stored_relation(name)


class TestRouterIdListing:
    def test_tuple_count_never_fetches_stored_relations(self, secret_key, rng):
        shards = [FetchCountingServer(), FetchCountingServer()]
        db = EncryptedDatabase.open(secret_key, shards=shards, rng=rng)
        try:
            db.create_table(EMP_DECL, rows=ROWS)
            baseline = [shard.full_fetches for shard in shards]
            assert db.count("Emp") == len(ROWS)
            assert [s.full_fetches for s in shards] == baseline  # O(ids), not O(data)
        finally:
            db.close()

    def test_replicated_count_is_logical_not_physical(self, secret_key, rng):
        shards = [OutsourcedDatabaseServer() for _ in range(3)]
        db = EncryptedDatabase.open(secret_key, shards=shards, replicas=2, rng=rng)
        try:
            db.create_table(EMP_DECL, rows=ROWS)
            physical = sum(
                db.server.per_shard_tuple_counts("Emp").values()
            )
            assert physical == 2 * len(ROWS)  # R copies really stored
            assert db.count("Emp") == len(ROWS)  # counted once each
        finally:
            db.close()

    def test_router_list_tuple_ids_unions_distinct(self, secret_key, rng):
        shards = [OutsourcedDatabaseServer() for _ in range(3)]
        db = EncryptedDatabase.open(secret_key, shards=shards, replicas=2, rng=rng)
        try:
            db.create_table(EMP_DECL, rows=ROWS)
            router = db.server
            ids = router.list_tuple_ids("Emp")
            assert len(ids) == len(ROWS)
            assert len(set(ids)) == len(ids)
            assert list(ids) == sorted(ids)
        finally:
            db.close()

    def test_list_tuple_ids_envelope_routes_across_the_fleet(self, secret_key, rng):
        router = ShardRouter([OutsourcedDatabaseServer(), OutsourcedDatabaseServer()])
        db = EncryptedDatabase.open(secret_key, server=router, rng=rng)
        try:
            db.create_table(EMP_DECL, rows=ROWS)
            request = MessageV2(kind=MessageKind.LIST_TUPLE_IDS, relation_name="Emp")
            response = parse_message(router.handle_message(request.to_bytes()))
            assert response.kind is MessageKind.TUPLE_IDS
            assert len(decode_tuple_ids(response.body)) == len(ROWS)
        finally:
            db.close()