"""Elastic membership: shard add/remove with tuple migration."""

from __future__ import annotations

import pytest

from repro.api import EncryptedDatabase
from repro.cluster import (
    ClusterError,
    ShardRouter,
    misplaced_tuples,
    rebalance,
    surplus_copies,
)
from repro.outsourcing import OutsourcedDatabaseServer
from repro.relational import Selection

EMP_DECL = "Emp(name:string[14], dept:string[5], salary:int[6])"
ROWS = [(f"emp{i}", "HR" if i % 2 else "IT", 1000 + i) for i in range(40)]


def _placement_is_consistent(router, name):
    for shard_id in router.shard_ids:
        for t in router.shard(shard_id).stored_relation(name):
            assert router.shard_for(t.tuple_id) == shard_id


@pytest.fixture
def db(secret_key, rng):
    session = EncryptedDatabase.open(
        secret_key,
        shards=[OutsourcedDatabaseServer(), OutsourcedDatabaseServer()],
        rng=rng,
    )
    session.create_table(EMP_DECL, rows=ROWS)
    return session


class TestAddShard:
    def test_add_migrates_the_ring_share(self, db):
        router = db.server
        report = router.add_shard(OutsourcedDatabaseServer())
        assert report.moved > 0
        assert report.scanned == len(ROWS)
        # only moves *onto* the new shard (consistent hashing stability)
        assert all(target == "shard-2" for _, target in report.per_edge)
        assert router.per_shard_tuple_counts("Emp")["shard-2"] == report.moved
        _placement_is_consistent(router, "Emp")

    def test_queries_stay_correct_after_growth(self, db):
        db.server.add_shard(OutsourcedDatabaseServer())
        assert len(db.select("SELECT * FROM Emp WHERE dept = 'HR'").relation) == 20
        assert db.count("Emp") == len(ROWS)
        db.insert("Emp", {"name": "Zoe", "dept": "HR", "salary": 1})
        assert len(db.select(Selection.equals("dept", "HR"), table="Emp").relation) == 21
        _placement_is_consistent(db.server, "Emp")

    def test_add_without_rebalance_defers_migration(self, db):
        router = db.server
        assert router.add_shard(OutsourcedDatabaseServer(), rebalance=False) is None
        # data still where it was, but the new shard serves (empty) queries
        assert router.per_shard_tuple_counts("Emp")["shard-2"] == 0
        assert len(db.select("SELECT * FROM Emp WHERE dept = 'IT'").relation) == 20
        report = router.rebalance()
        assert report.moved > 0
        _placement_is_consistent(router, "Emp")

    def test_delete_reaches_tuples_misplaced_by_a_deferred_rebalance(self, db):
        router = db.server
        router.add_shard(OutsourcedDatabaseServer(), rebalance=False)
        # many tuples now sit off their ring owner; deletes fan out to the
        # whole fleet, so they must still land
        assert db.delete("SELECT * FROM Emp WHERE dept = 'HR'") == 20
        assert db.count("Emp") == 20
        assert len(db.select(Selection.equals("dept", "HR"), table="Emp").relation) == 0

    def test_rebalance_converges(self, db):
        router = db.server
        router.add_shard(OutsourcedDatabaseServer())
        second = router.rebalance()
        assert second.moved == 0
        assert second.scanned == len(ROWS)

    def test_add_requires_known_evaluators(self, db):
        # a second router over the same backends never saw register_evaluator
        blind = ShardRouter([db.server.shard("shard-0"), db.server.shard("shard-1")])
        with pytest.raises(ClusterError, match="no evaluator"):
            blind.add_shard(OutsourcedDatabaseServer())

    def test_duplicate_shard_id_rejected(self, db):
        with pytest.raises(ClusterError, match="duplicate"):
            db.server.add_shard(OutsourcedDatabaseServer(), shard_id="shard-0")


class TestRemoveShard:
    def test_remove_drains_the_leaving_shard(self, db):
        router = db.server
        victim = router.shard("shard-1")
        held = victim.tuple_count("Emp")
        assert held > 0
        report = router.remove_shard("shard-1")
        assert report.moved == held
        assert router.shard_ids == ("shard-0",)
        assert victim.relation_names == ()  # drained and dropped
        assert db.count("Emp") == len(ROWS)
        assert len(db.select("SELECT * FROM Emp WHERE dept = 'HR'").relation) == 20

    def test_grow_then_shrink_loses_nothing(self, db):
        router = db.server
        router.add_shard(OutsourcedDatabaseServer())
        router.remove_shard("shard-0")
        assert db.count("Emp") == len(ROWS)
        assert len(db.retrieve_all("Emp")) == len(ROWS)
        _placement_is_consistent(router, "Emp")

    def test_shrink_then_grow_picks_a_free_default_id(self, db):
        router = db.server
        router.remove_shard("shard-0")
        report = router.add_shard(OutsourcedDatabaseServer())  # must not collide
        assert report is not None
        assert len(router.shard_ids) == 2
        assert db.count("Emp") == len(ROWS)
        _placement_is_consistent(router, "Emp")

    def test_cannot_remove_the_last_shard(self, secret_key):
        db = EncryptedDatabase.open(secret_key, shards=[OutsourcedDatabaseServer()])
        db.create_table(EMP_DECL, rows=ROWS[:2])
        with pytest.raises(ClusterError, match="last shard"):
            db.server.remove_shard("shard-0")

    def test_unknown_shard_rejected(self, db):
        with pytest.raises(ClusterError, match="no shard"):
            db.server.remove_shard("shard-9")


class TestCrashMidMigration:
    """The insert-first rebalancer may die between its insert and delete
    phases; the duplicate it leaves must not change what queries answer,
    and the next rebalance must clean it up."""

    def _crash_rebalance(self, db):
        """Crash-inject the rebalancer: inserts applied, deletes refused."""
        router = db.server
        router.add_shard(OutsourcedDatabaseServer(), rebalance=False)
        saboteurs = []
        for shard_id in router.shard_ids:
            backend = router.shard(shard_id)

            def refuse(name, tuple_ids):
                raise ConnectionError("crashed before the delete phase")

            backend.delete_tuples = refuse  # shadow the bound method
            saboteurs.append(backend)
        with pytest.raises(ConnectionError):
            router.rebalance()
        for backend in saboteurs:  # un-shadow: restore the class method
            del backend.delete_tuples
        return router

    def test_queries_answer_each_tuple_once_despite_duplicates(self, db):
        router = self._crash_rebalance(db)
        physical = sum(router.per_shard_tuple_counts("Emp").values())
        assert physical > len(ROWS)  # the crash really left duplicates
        assert len(db.select("SELECT * FROM Emp WHERE dept = 'HR'").relation) == 20
        assert len(db.select("SELECT * FROM Emp WHERE dept = 'IT'").relation) == 20

    def test_counts_do_not_inflate_despite_duplicates(self, db):
        router = self._crash_rebalance(db)
        assert db.count("Emp") == len(ROWS)
        assert len(router.stored_relation("Emp")) == len(ROWS)
        assert len(db.retrieve_all("Emp")) == len(ROWS)

    def test_rerunning_the_rebalance_converges_and_cleans_up(self, db):
        router = self._crash_rebalance(db)
        report = router.rebalance()
        assert report.removed > 0  # the stale copies died this time
        assert sum(router.per_shard_tuple_counts("Emp").values()) == len(ROWS)
        _placement_is_consistent(router, "Emp")
        assert router.rebalance().moved == 0


class TestReplicatedRebalance:
    REPLICAS = 2

    @pytest.fixture
    def rdb(self, secret_key, rng):
        session = EncryptedDatabase.open(
            secret_key,
            shards=[OutsourcedDatabaseServer() for _ in range(3)],
            replicas=self.REPLICAS,
            rng=rng,
        )
        session.create_table(EMP_DECL, rows=ROWS)
        return session

    def _holders(self, router, name):
        holders = {}
        for shard_id in router.shard_ids:
            for t in router.shard(shard_id).stored_relation(name):
                holders.setdefault(t.tuple_id, set()).add(shard_id)
        return holders

    def _fully_replicated(self, router, name):
        for tuple_id, shard_ids in self._holders(router, name).items():
            assert shard_ids == set(router.replica_shards(tuple_id))

    def test_steady_state_has_nothing_to_move(self, rdb):
        report = rdb.server.rebalance()
        assert report.moved == 0 and report.removed == 0
        assert report.scanned == self.REPLICAS * len(ROWS)

    def test_repairs_under_replication(self, rdb):
        router = rdb.server
        # wound one replica set: drop a single copy behind the router's back
        tuple_id, holders = next(iter(self._holders(router, "Emp").items()))
        victim = sorted(holders)[0]
        router.shard(victim).delete_tuples("Emp", [tuple_id])
        report = router.rebalance()
        assert report.moved == 1
        self._fully_replicated(router, "Emp")

    def test_add_shard_keeps_replica_sets_complete(self, rdb):
        router = rdb.server
        report = router.add_shard(OutsourcedDatabaseServer())
        assert report.moved > 0
        self._fully_replicated(router, "Emp")
        assert router.rebalance().moved == 0
        assert rdb.count("Emp") == len(ROWS)

    def test_remove_shard_restores_the_replication_factor(self, rdb):
        router = rdb.server
        router.remove_shard("shard-2")
        self._fully_replicated(router, "Emp")
        assert rdb.count("Emp") == len(ROWS)
        assert len(rdb.select("SELECT * FROM Emp WHERE dept = 'HR'").relation) == 20

    def test_misplaced_and_surplus_report_the_pending_work(self, rdb):
        router = rdb.server
        shards = {sid: router.shard(sid) for sid in router.shard_ids}
        assert misplaced_tuples(shards, router.ring, "Emp",
                                replication=self.REPLICAS) == []
        assert surplus_copies(shards, router.ring, "Emp",
                              replication=self.REPLICAS) == []
        tuple_id, holders = next(iter(self._holders(router, "Emp").items()))
        victim = sorted(holders)[0]
        router.shard(victim).delete_tuples("Emp", [tuple_id])
        pending = misplaced_tuples(shards, router.ring, "Emp",
                                   replication=self.REPLICAS)
        assert [(source, target, t.tuple_id) for source, target, t in pending] == [
            (sorted(holders - {victim})[0], victim, tuple_id)
        ]


class TestRebalanceFunction:
    def test_rejects_a_ring_without_backends(self, db):
        from repro.cluster import ConsistentHashRing

        ring = ConsistentHashRing(["shard-0", "ghost"])
        with pytest.raises(ClusterError, match="ghost"):
            rebalance({"shard-0": db.server.shard("shard-0")}, ring, ["Emp"])

    def test_report_summary_renders(self, db):
        report = db.server.add_shard(OutsourcedDatabaseServer())
        assert "moved" in report.summary()
        assert db.server.rebalance().summary().endswith("nothing to move")
