"""Placement-ring properties: determinism, balance, stability."""

from __future__ import annotations

import hashlib

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster.ring import (
    ConsistentHashRing,
    DEFAULT_REPLICAS,
    DEFAULT_VIRTUAL_NODES,
    RingError,
)


def _keys(count: int) -> list[bytes]:
    return [hashlib.sha256(f"key-{i}".encode()).digest() for i in range(count)]


TEN_K = _keys(10_000)


class TestDeterminism:
    def test_two_rings_with_the_same_shards_route_identically(self):
        first = ConsistentHashRing(["a", "b", "c"])
        second = ConsistentHashRing(["a", "b", "c"])
        for key in _keys(500):
            assert first.assign(key) == second.assign(key)

    def test_insertion_order_does_not_matter(self):
        forward = ConsistentHashRing(["a", "b", "c", "d"])
        backward = ConsistentHashRing(["d", "c", "b", "a"])
        for key in _keys(500):
            assert forward.assign(key) == backward.assign(key)

    def test_assignment_is_repeatable(self):
        ring = ConsistentHashRing(["a", "b"])
        key = b"some-tuple-id"
        assert ring.assign(key) == ring.assign(key)


class TestBalance:
    @pytest.mark.parametrize("shard_count", [2, 3, 4, 5, 8])
    def test_imbalance_at_most_15_percent_for_10k_keys(self, shard_count):
        ring = ConsistentHashRing([f"shard-{i}" for i in range(shard_count)])
        distribution = ring.distribution(TEN_K)
        mean = len(TEN_K) / shard_count
        worst = max(abs(count - mean) / mean for count in distribution.values())
        assert worst <= 0.15, f"{shard_count} shards: {dict(distribution)}"

    def test_every_shard_receives_keys(self):
        ring = ConsistentHashRing([f"shard-{i}" for i in range(8)])
        distribution = ring.distribution(_keys(1000))
        assert all(count > 0 for count in distribution.values())


class TestStability:
    def test_adding_a_shard_only_moves_keys_to_it(self):
        ring = ConsistentHashRing(["a", "b", "c", "d"])
        before = {key: ring.assign(key) for key in TEN_K}
        ring.add_shard("e")
        moved = 0
        for key in TEN_K:
            after = ring.assign(key)
            if after != before[key]:
                moved += 1
                assert after == "e"  # never between surviving shards
        # roughly 1/5 of the keys migrate; far from a rehash-everything
        assert 0.10 <= moved / len(TEN_K) <= 0.30

    def test_removing_a_shard_only_moves_its_keys(self):
        ring = ConsistentHashRing(["a", "b", "c", "d"])
        before = {key: ring.assign(key) for key in TEN_K}
        ring.remove_shard("b")
        for key in TEN_K:
            if before[key] != "b":
                assert ring.assign(key) == before[key]

    def test_add_then_remove_restores_the_original_assignment(self):
        ring = ConsistentHashRing(["a", "b", "c"])
        before = {key: ring.assign(key) for key in TEN_K[:1000]}
        ring.add_shard("d")
        ring.remove_shard("d")
        assert {key: ring.assign(key) for key in TEN_K[:1000]} == before

    @settings(max_examples=25, deadline=None)
    @given(
        shards=st.lists(
            st.text(alphabet="abcdefgh", min_size=1, max_size=6),
            min_size=2, max_size=6, unique=True,
        ),
        removed=st.integers(min_value=0, max_value=5),
        keys=st.lists(st.binary(min_size=1, max_size=32), min_size=1, max_size=50),
    )
    def test_surviving_keys_never_move_property(self, shards, removed, keys):
        ring = ConsistentHashRing(shards, virtual_nodes=32)
        victim = shards[removed % len(shards)]
        before = {bytes(key): ring.assign(key) for key in keys}
        ring.remove_shard(victim)
        for key in keys:
            if before[bytes(key)] != victim:
                assert ring.assign(key) == before[bytes(key)]


class TestEdges:
    def test_empty_ring_refuses_assignment(self):
        with pytest.raises(RingError):
            ConsistentHashRing().assign(b"x")

    def test_duplicate_shard_rejected(self):
        ring = ConsistentHashRing(["a"])
        with pytest.raises(RingError):
            ring.add_shard("a")

    def test_unknown_shard_removal_rejected(self):
        with pytest.raises(RingError):
            ConsistentHashRing(["a"]).remove_shard("b")

    def test_empty_shard_id_rejected(self):
        with pytest.raises(RingError):
            ConsistentHashRing([""])

    def test_invalid_virtual_nodes_rejected(self):
        with pytest.raises(RingError):
            ConsistentHashRing(virtual_nodes=0)

    def test_partition_covers_every_shard(self):
        ring = ConsistentHashRing(["a", "b", "c"])
        groups = ring.partition(_keys(30))
        assert set(groups) == {"a", "b", "c"}
        assert sum(len(keys) for keys in groups.values()) == 30

    def test_default_virtual_nodes_exported(self):
        assert ConsistentHashRing(["a"]).virtual_nodes == DEFAULT_VIRTUAL_NODES
        # the pre-replication alias keeps old call sites meaningful
        assert DEFAULT_REPLICAS == DEFAULT_VIRTUAL_NODES


class TestSuccessors:
    def test_first_successor_is_the_assignment(self):
        ring = ConsistentHashRing(["a", "b", "c"])
        for key in _keys(200):
            successors = ring.successors(key, 2)
            assert successors[0] == ring.assign(key)

    def test_successors_are_distinct_and_deterministic(self):
        first = ConsistentHashRing(["a", "b", "c", "d"])
        second = ConsistentHashRing(["d", "c", "b", "a"])
        for key in _keys(200):
            successors = first.successors(key, 3)
            assert len(set(successors)) == 3
            assert second.successors(key, 3) == successors

    def test_full_replication_lists_every_shard(self):
        ring = ConsistentHashRing(["a", "b", "c"])
        for key in _keys(50):
            assert set(ring.successors(key, 3)) == {"a", "b", "c"}

    def test_replica_sets_are_balanced(self):
        ring = ConsistentHashRing([f"shard-{i}" for i in range(4)])
        copies = {shard_id: 0 for shard_id in ring.shard_ids}
        for key in TEN_K:
            for shard_id in ring.successors(key, 2):
                copies[shard_id] += 1
        mean = len(TEN_K) * 2 / 4
        worst = max(abs(count - mean) / mean for count in copies.values())
        assert worst <= 0.15, copies

    def test_membership_change_only_touches_crossing_successor_sets(self):
        ring = ConsistentHashRing(["a", "b", "c", "d"])
        before = {key: ring.successors(key, 2) for key in TEN_K[:2000]}
        ring.add_shard("e")
        for key, old in before.items():
            new = ring.successors(key, 2)
            if new != old:
                assert "e" in new  # a change always involves the new shard

    def test_more_replicas_than_shards_rejected(self):
        ring = ConsistentHashRing(["a", "b"])
        with pytest.raises(RingError, match="cannot place 3 replicas"):
            ring.successors(b"k", 3)

    def test_zero_replicas_rejected(self):
        with pytest.raises(RingError):
            ConsistentHashRing(["a"]).successors(b"k", 0)

    def test_empty_ring_refuses_successors(self):
        with pytest.raises(RingError):
            ConsistentHashRing().successors(b"k", 1)


class TestCovers:
    def test_all_shards_live_always_covers(self):
        ring = ConsistentHashRing(["a", "b", "c"])
        assert ring.covers(["a", "b", "c"], 2)
        assert ring.covers(["a", "b", "c"], 1)

    def test_fewer_dead_than_replicas_covers(self):
        ring = ConsistentHashRing(["a", "b", "c"])
        for dead in "abc":
            live = [s for s in "abc" if s != dead]
            assert ring.covers(live, 2)

    def test_one_dead_never_covers_without_replication(self):
        ring = ConsistentHashRing(["a", "b", "c"])
        # R=1: some segment's only successor is the dead shard
        assert not ring.covers(["a", "b"], 1)

    def test_as_many_dead_as_replicas_breaks_coverage(self):
        # With 256 virtual nodes some segment's 2 successors are exactly
        # the two dead shards, so the exact per-segment walk must say no.
        ring = ConsistentHashRing(["a", "b", "c"])
        assert not ring.covers(["a"], 2)

    def test_no_live_shards_never_covers(self):
        ring = ConsistentHashRing(["a", "b"])
        assert not ring.covers([], 1)
        assert not ring.covers(["ghost"], 1)
