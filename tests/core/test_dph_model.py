"""Tests for the shared database-PH data model (EncryptedTuple/Relation/Query)."""

from __future__ import annotations

import pytest

from repro.core.dph import (
    DphError,
    EncryptedQuery,
    EncryptedRelation,
    EncryptedTuple,
)
from repro.relational.schema import Attribute, RelationSchema


@pytest.fixture
def schema():
    return RelationSchema("T", [Attribute.string("a", 4), Attribute.integer("b", 4)])


def make_tuple(index: int) -> EncryptedTuple:
    return EncryptedTuple(
        tuple_id=bytes([index]) * 4,
        payload=b"p" * 10,
        search_fields=(b"f1", b"f2"),
        metadata=b"m",
    )


class TestEncryptedTuple:
    def test_size_in_bytes(self):
        t = make_tuple(1)
        assert t.size_in_bytes() == 4 + 10 + 4 + 1

    def test_defaults(self):
        t = EncryptedTuple(tuple_id=b"id", payload=b"p")
        assert t.search_fields == ()
        assert t.metadata == b""


class TestEncryptedRelation:
    def test_len_iter_size(self, schema):
        relation = EncryptedRelation(schema, (make_tuple(1), make_tuple(2)))
        assert len(relation) == 2
        assert list(relation) == list(relation.encrypted_tuples)
        assert relation.size_in_bytes() == 2 * make_tuple(1).size_in_bytes()

    def test_restrict_to(self, schema):
        tuples = (make_tuple(1), make_tuple(2), make_tuple(3))
        relation = EncryptedRelation(schema, tuples)
        restricted = relation.restrict_to([tuples[0].tuple_id, tuples[2].tuple_id])
        assert len(restricted) == 2
        assert tuples[1] not in restricted.encrypted_tuples


class TestEncryptedQuery:
    def test_requires_at_least_one_token(self):
        with pytest.raises(DphError):
            EncryptedQuery(scheme_name="x", tokens=())

    def test_size_in_bytes(self):
        query = EncryptedQuery(scheme_name="x", tokens=(b"abc", b"de"), metadata=b"z")
        assert query.size_in_bytes() == 6
