"""Tests for the variable-length attribute optimization."""

from __future__ import annotations

import pytest

from repro.core import (
    SearchableSelectDph,
    VariableWidthSelectDph,
    check_homomorphism,
)
from repro.core.dph import DphError, EncryptedQuery
from repro.crypto.keys import SecretKey
from repro.crypto.rng import DeterministicRng
from repro.relational import ConjunctiveSelection, Relation, RelationSchema, Selection


@pytest.fixture
def wide_schema():
    """A schema with very unequal attribute widths (where the optimization pays)."""
    return RelationSchema.parse(
        "Doc(title:string[40], category:string[6], year:int[4])"
    )


@pytest.fixture
def wide_relation(wide_schema):
    return Relation.from_rows(
        wide_schema,
        [
            ("A Theory of Outsourced Databases", "CRYPTO", 2006),
            ("Searchable Encryption in Practice", "DB", 2000),
            ("Bucketization Considered Harmful", "DB", 2002),
            ("Provable Security Notes", "CRYPTO", 2006),
        ],
    )


@pytest.fixture
def variable_dph(wide_schema, rng):
    return VariableWidthSelectDph(wide_schema, SecretKey.generate(rng=rng), rng=rng)


class TestVariableWidthBasics:
    def test_name(self, variable_dph):
        assert variable_dph.name == "dph-swp-variable"

    def test_per_attribute_word_lengths(self, variable_dph):
        assert variable_dph.word_length_of("title") == 41
        assert variable_dph.word_length_of("category") == 7
        assert variable_dph.word_length_of("year") == 5

    def test_rejects_wide_attribute_ids(self, wide_schema, secret_key):
        with pytest.raises(DphError):
            VariableWidthSelectDph(wide_schema, secret_key, attribute_id_width=2)

    def test_accepts_raw_key_bytes(self, wide_schema):
        dph = VariableWidthSelectDph(wide_schema, b"k" * 32)
        assert dph.schema == wide_schema


class TestVariableWidthRoundtrip:
    def test_encrypt_decrypt(self, variable_dph, wide_relation):
        encrypted = variable_dph.encrypt_relation(wide_relation)
        assert variable_dph.decrypt_relation(encrypted) == wide_relation

    def test_schema_mismatch_rejected(self, variable_dph):
        other = Relation(RelationSchema.parse("Other(x:string[3])"))
        with pytest.raises(DphError):
            variable_dph.encrypt_relation(other)

    def test_fields_use_per_attribute_widths(self, variable_dph, wide_relation):
        encrypted = variable_dph.encrypt_relation(wide_relation)
        first = encrypted.encrypted_tuples[0]
        assert len(first.search_fields[0]) == 41
        assert len(first.search_fields[1]) == 7
        assert len(first.search_fields[2]) == 5

    def test_storage_is_smaller_than_fixed_width(self, wide_schema, wide_relation, rng):
        key = SecretKey.generate(rng=DeterministicRng(77))
        variable = VariableWidthSelectDph(wide_schema, key, rng=DeterministicRng(1))
        fixed = SearchableSelectDph(wide_schema, key, backend="swp", rng=DeterministicRng(2))
        variable_bytes = variable.encrypt_relation(wide_relation).size_in_bytes()
        fixed_bytes = fixed.encrypt_relation(wide_relation).size_in_bytes()
        assert variable_bytes < fixed_bytes


class TestVariableWidthQueries:
    def test_homomorphism(self, variable_dph, wide_relation):
        queries = [
            Selection.equals("category", "DB"),
            Selection.equals("year", 2006),
            Selection.equals("title", "Provable Security Notes"),
            Selection.equals("category", "NONE"),
        ]
        report = check_homomorphism(variable_dph, wide_relation, queries)
        assert report.holds
        assert report.total_false_positives == 0

    def test_conjunctive_query(self, variable_dph, wide_relation):
        query = ConjunctiveSelection.of(("category", "CRYPTO"), ("year", 2006))
        encrypted = variable_dph.encrypt_relation(wide_relation)
        result = variable_dph.server_evaluator().evaluate(
            variable_dph.encrypt_query(query), encrypted
        )
        report = variable_dph.decrypt_result(result, query)
        assert report.kept == 2

    def test_evaluator_rejects_foreign_queries(self, variable_dph, wide_relation):
        encrypted = variable_dph.encrypt_relation(wide_relation)
        evaluator = variable_dph.server_evaluator()
        foreign = EncryptedQuery(scheme_name="dph-swp", tokens=(b"\x00\x00" + b"x" * 40,))
        with pytest.raises(DphError):
            evaluator.evaluate(foreign, encrypted)

    def test_evaluator_rejects_unknown_positions(self, variable_dph, wide_relation):
        encrypted = variable_dph.encrypt_relation(wide_relation)
        evaluator = variable_dph.server_evaluator()
        bogus = EncryptedQuery(scheme_name=variable_dph.name, tokens=(b"\x00\x63" + b"x" * 10,))
        with pytest.raises(DphError):
            evaluator.evaluate(bogus, encrypted)

    def test_equal_values_still_hide_equality(self, variable_dph, wide_relation):
        """The optimization must not reintroduce the deterministic-field leak."""
        encrypted = variable_dph.encrypt_relation(wide_relation)
        category_fields = [t.search_fields[1] for t in encrypted.encrypted_tuples]
        # Two documents share category 'DB' and two share 'CRYPTO', yet all
        # four ciphertext fields are distinct.
        assert len(set(category_fields)) == len(category_fields)
