"""Tests for the paper's construction (SearchableSelectDph)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SearchableSelectDph, check_homomorphism
from repro.core.dph import DphError
from repro.crypto.errors import IntegrityError
from repro.crypto.keys import SecretKey
from repro.crypto.rng import DeterministicRng
from repro.relational import (
    ConjunctiveSelection,
    Projection,
    Relation,
    RelationSchema,
    Selection,
)


@pytest.fixture(params=["swp", "index"])
def dph(request, employee_schema, secret_key, rng):
    return SearchableSelectDph(employee_schema, secret_key, backend=request.param, rng=rng)


class TestConstructionBasics:
    def test_backend_names(self, employee_schema, secret_key):
        assert SearchableSelectDph(employee_schema, secret_key, backend="swp").name == "dph-swp"
        assert SearchableSelectDph(employee_schema, secret_key, backend="index").name == "dph-index"

    def test_unknown_backend_rejected(self, employee_schema, secret_key):
        with pytest.raises(DphError):
            SearchableSelectDph(employee_schema, secret_key, backend="nope")

    def test_word_length_is_longest_value_plus_id(self, employee_schema, secret_key):
        dph = SearchableSelectDph(employee_schema, secret_key)
        assert dph.word_length == employee_schema.max_value_length() + 1

    def test_accepts_raw_key_bytes(self, employee_schema):
        dph = SearchableSelectDph(employee_schema, b"k" * 32)
        assert dph.schema == employee_schema

    def test_wide_attribute_id_rejected(self, employee_schema, secret_key):
        with pytest.raises(DphError):
            SearchableSelectDph(employee_schema, secret_key, attribute_id_width=2)


class TestEncryptDecrypt:
    def test_roundtrip(self, dph, employee_relation):
        encrypted = dph.encrypt_relation(employee_relation)
        assert dph.decrypt_relation(encrypted) == employee_relation

    def test_roundtrip_via_words(self, dph, employee_relation):
        encrypted = dph.encrypt_relation(employee_relation)
        assert dph.decrypt_relation(encrypted, via_words=True) == employee_relation

    def test_tuple_count_preserved(self, dph, employee_relation):
        assert len(dph.encrypt_relation(employee_relation)) == len(employee_relation)

    def test_encryption_is_randomized(self, dph, employee_relation):
        first = dph.encrypt_relation(employee_relation)
        second = dph.encrypt_relation(employee_relation)
        assert first.encrypted_tuples[0].payload != second.encrypted_tuples[0].payload
        assert first.encrypted_tuples[0].tuple_id != second.encrypted_tuples[0].tuple_id

    def test_equal_values_produce_distinct_search_fields(self, employee_schema, secret_key, rng):
        """The property the bucketization baselines lack: no equality pattern leaks."""
        dph = SearchableSelectDph(employee_schema, secret_key, backend="swp", rng=rng)
        relation = Relation.from_rows(
            employee_schema, [("A", "HR", 100), ("B", "HR", 100)]
        )
        encrypted = dph.encrypt_relation(relation)
        first, second = encrypted.encrypted_tuples
        assert first.search_fields[1] != second.search_fields[1]
        assert first.search_fields[2] != second.search_fields[2]

    def test_schema_mismatch_rejected(self, dph):
        other_schema = RelationSchema.parse("Other(x:string[3])")
        with pytest.raises(DphError):
            dph.encrypt_relation(Relation(other_schema))

    def test_tampered_payload_detected(self, dph, employee_relation):
        encrypted = dph.encrypt_relation(employee_relation)
        victim = encrypted.encrypted_tuples[0]
        tampered = type(victim)(
            tuple_id=victim.tuple_id,
            payload=victim.payload[:-1] + bytes([victim.payload[-1] ^ 1]),
            search_fields=victim.search_fields,
            metadata=victim.metadata,
        )
        with pytest.raises(IntegrityError):
            dph.decrypt_tuple(tampered)

    def test_empty_relation(self, dph, employee_schema):
        encrypted = dph.encrypt_relation(Relation(employee_schema))
        assert len(encrypted) == 0
        assert dph.decrypt_relation(encrypted) == Relation(employee_schema)


class TestEncryptedQueries:
    def test_single_predicate_single_token(self, dph):
        query = dph.encrypt_query(Selection.equals("dept", "HR"))
        assert len(query.tokens) == 1
        assert query.scheme_name == dph.name

    def test_conjunction_one_token_per_predicate(self, dph):
        query = dph.encrypt_query(ConjunctiveSelection.of(("dept", "HR"), ("salary", 7500)))
        assert len(query.tokens) == 2

    def test_projection_queries_supported(self, dph):
        query = dph.encrypt_query(Projection(Selection.equals("dept", "HR"), ("name",)))
        assert len(query.tokens) == 1

    def test_query_on_unknown_attribute_rejected(self, dph):
        with pytest.raises(Exception):
            dph.encrypt_query(Selection.equals("nope", "HR"))

    def test_query_value_type_validated(self, dph):
        with pytest.raises(Exception):
            dph.encrypt_query(Selection.equals("salary", "not-an-int"))

    def test_query_encryption_reveals_no_plaintext_bytes(self, dph):
        query = dph.encrypt_query(Selection.equals("name", "Montgomery"))
        assert b"Montgomery" not in b"".join(query.tokens)


class TestServerEvaluation:
    def test_exact_select_returns_matching_tuples(self, dph, employee_relation):
        encrypted = dph.encrypt_relation(employee_relation)
        evaluator = dph.server_evaluator()
        query = Selection.equals("dept", "HR")
        result = evaluator.evaluate(dph.encrypt_query(query), encrypted)
        report = dph.decrypt_result(result, query)
        assert report.kept == 2
        assert all(t.value("dept") == "HR" for t in report.relation)

    def test_miss_returns_empty(self, dph, employee_relation):
        encrypted = dph.encrypt_relation(employee_relation)
        evaluator = dph.server_evaluator()
        query = Selection.equals("name", "Nobody")
        result = evaluator.evaluate(dph.encrypt_query(query), encrypted)
        assert dph.decrypt_result(result, query).kept == 0

    def test_conjunctive_select(self, dph, employee_relation):
        encrypted = dph.encrypt_relation(employee_relation)
        evaluator = dph.server_evaluator()
        query = ConjunctiveSelection.of(("dept", "HR"), ("salary", 7500))
        result = evaluator.evaluate(dph.encrypt_query(query), encrypted)
        report = dph.decrypt_result(result, query)
        assert report.kept == 2

    def test_evaluator_rejects_foreign_queries(self, dph, employee_relation):
        encrypted = dph.encrypt_relation(employee_relation)
        evaluator = dph.server_evaluator()
        foreign = dph.encrypt_query(Selection.equals("dept", "HR"))
        foreign = type(foreign)(scheme_name="other-scheme", tokens=foreign.tokens)
        with pytest.raises(DphError):
            evaluator.evaluate(foreign, encrypted)

    def test_evaluation_counters(self, dph, employee_relation):
        encrypted = dph.encrypt_relation(employee_relation)
        evaluator = dph.server_evaluator()
        result = evaluator.evaluate(
            dph.encrypt_query(Selection.equals("dept", "HR")), encrypted
        )
        assert result.examined == len(employee_relation)
        assert result.token_evaluations == len(employee_relation)

    def test_homomorphism_property(self, dph, employee_relation):
        queries = [
            Selection.equals("dept", "HR"),
            Selection.equals("dept", "IT"),
            Selection.equals("salary", 7500),
            Selection.equals("name", "Smith"),
            Selection.equals("name", "Nobody"),
        ]
        report = check_homomorphism(dph, employee_relation, queries)
        assert report.holds
        assert report.total_false_positives == 0


class TestDifferentKeysAreIncompatible:
    def test_queries_under_wrong_key_find_nothing(self, employee_schema, employee_relation):
        alice = SearchableSelectDph(employee_schema, SecretKey.generate(rng=DeterministicRng(1)),
                                    rng=DeterministicRng(2))
        mallory = SearchableSelectDph(employee_schema, SecretKey.generate(rng=DeterministicRng(3)),
                                      rng=DeterministicRng(4))
        encrypted = alice.encrypt_relation(employee_relation)
        foreign_query = mallory.encrypt_query(Selection.equals("dept", "HR"))
        result = alice.server_evaluator().evaluate(foreign_query, encrypted)
        assert len(result.matching) == 0


@given(
    rows=st.lists(
        st.tuples(
            st.text(alphabet="abcdefgh", min_size=1, max_size=10),
            st.sampled_from(["HR", "IT", "OPS"]),
            st.integers(min_value=0, max_value=9999),
        ),
        min_size=1,
        max_size=12,
    ),
    backend=st.sampled_from(["swp", "index"]),
)
@settings(max_examples=25, deadline=None)
def test_property_construction_equals_plaintext_semantics(rows, backend):
    """E(sigma(R)) = psi(E(R)) for arbitrary small relations and all dept queries."""
    schema = RelationSchema.parse("Emp(name:string[14], dept:string[5], salary:int[6])")
    relation = Relation.from_rows(schema, rows)
    dph = SearchableSelectDph(
        schema, SecretKey.generate(rng=DeterministicRng(42)), backend=backend,
        rng=DeterministicRng(43),
    )
    queries = [Selection.equals("dept", d) for d in ("HR", "IT", "OPS")]
    assert check_homomorphism(dph, relation, queries).holds
