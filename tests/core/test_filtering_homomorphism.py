"""Tests for client-side filtering and the homomorphism checker."""

from __future__ import annotations

import pytest

from repro.core import SearchableSelectDph, check_homomorphism, filter_decrypted_result
from repro.core.homomorphism import HomomorphismReport, QueryCheck
from repro.relational import Projection, Relation, Selection
from repro.schemes import BucketizationConfig, HacigumusDph


class TestFilterDecryptedResult:
    def test_no_query_keeps_everything(self, employee_relation):
        report = filter_decrypted_result(employee_relation, None)
        assert report.kept == len(employee_relation)
        assert report.false_positives == 0

    def test_filter_removes_non_matching_tuples(self, employee_relation):
        report = filter_decrypted_result(employee_relation, Selection.equals("dept", "HR"))
        assert report.kept == 2
        assert report.false_positives == len(employee_relation) - 2
        assert report.returned == len(employee_relation)

    def test_projection_wrapper_filters_on_inner_selection(self, employee_relation):
        query = Projection(Selection.equals("dept", "IT"), ("name",))
        report = filter_decrypted_result(employee_relation, query)
        assert report.kept == 2


class TestHomomorphismChecker:
    def test_report_aggregates(self, employee_schema):
        checks = (
            QueryCheck(Selection.equals("dept", "HR"), 2, 3, 2, 1, True, True),
            QueryCheck(Selection.equals("dept", "IT"), 1, 1, 1, 0, True, True),
        )
        report = HomomorphismReport(checks)
        assert report.holds
        assert report.total_false_positives == 1
        assert report.total_returned == 4
        assert report.false_positive_rate() == pytest.approx(0.25)

    def test_empty_report(self):
        report = HomomorphismReport(())
        assert report.holds
        assert report.false_positive_rate() == 0.0

    def test_detects_lossy_scheme_false_positives(self, employee_schema, employee_relation, secret_key, rng):
        """With two buckets over the salary domain, distinct salaries collide."""
        config = BucketizationConfig.uniform(employee_schema, num_buckets=2, minimum=0, maximum=10000)
        dph = HacigumusDph(employee_schema, secret_key, config=config, rng=rng)
        report = check_homomorphism(
            dph, employee_relation, [Selection.equals("salary", 7500)]
        )
        assert report.holds  # filtering repairs the result
        assert report.total_false_positives > 0

    def test_rejects_projection_queries(self, swp_dph, employee_relation):
        with pytest.raises(TypeError):
            check_homomorphism(
                swp_dph,
                employee_relation,
                [Projection(Selection.equals("dept", "HR"), ("name",))],
            )

    def test_per_query_counts(self, swp_dph, employee_relation):
        report = check_homomorphism(
            swp_dph, employee_relation, [Selection.equals("dept", "HR")]
        )
        check = report.checks[0]
        assert check.expected == 2
        assert check.kept == 2
        assert check.complete and check.sound and check.holds
