"""Tests for the workload generators."""

from __future__ import annotations

import pytest

from repro.crypto.rng import DeterministicRng
from repro.relational import Selection
from repro.relational.schema import Attribute, RelationSchema
from repro.workloads import (
    CategoricalDistribution,
    EmployeeWorkload,
    HospitalWorkload,
    SyntheticRelationGenerator,
    UniformIntDistribution,
    ZipfDistribution,
    hospital_schema,
    queries_over_values,
    random_equality_queries,
)
from repro.workloads.hospital import FATAL, HEALTHY


class TestDistributions:
    def test_categorical_respects_support(self):
        dist = CategoricalDistribution(["a", "b"], [0.5, 0.5])
        rng = DeterministicRng(1)
        assert set(dist.sample_many(rng, 100)) == {"a", "b"}

    def test_categorical_zero_probability_category_never_drawn(self):
        dist = CategoricalDistribution(["a", "b", "c"], [0.0, 1.0, 0.0])
        rng = DeterministicRng(2)
        assert set(dist.sample_many(rng, 50)) == {"b"}

    def test_categorical_approximates_probabilities(self):
        dist = CategoricalDistribution([0, 1], [0.2, 0.8])
        rng = DeterministicRng(3)
        samples = dist.sample_many(rng, 2000)
        assert 0.14 < samples.count(0) / 2000 < 0.26

    def test_categorical_validation(self):
        with pytest.raises(ValueError):
            CategoricalDistribution(["a"], [0.5, 0.5])
        with pytest.raises(ValueError):
            CategoricalDistribution([], [])
        with pytest.raises(ValueError):
            CategoricalDistribution(["a", "b"], [0.0, 0.0])
        with pytest.raises(ValueError):
            CategoricalDistribution(["a", "b"], [-1.0, 2.0])

    def test_uniform_int_bounds(self):
        dist = UniformIntDistribution(5, 10)
        rng = DeterministicRng(4)
        samples = dist.sample_many(rng, 300)
        assert min(samples) >= 5 and max(samples) <= 10
        with pytest.raises(ValueError):
            UniformIntDistribution(10, 5)

    def test_zipf_prefers_early_values(self):
        dist = ZipfDistribution(["hot", "warm", "cold"], exponent=1.5)
        rng = DeterministicRng(5)
        samples = dist.sample_many(rng, 1000)
        assert samples.count("hot") > samples.count("cold")

    def test_zipf_validation(self):
        with pytest.raises(ValueError):
            ZipfDistribution([])
        with pytest.raises(ValueError):
            ZipfDistribution(["a"], exponent=-1)

    def test_sample_many_validation(self):
        with pytest.raises(ValueError):
            UniformIntDistribution(0, 1).sample_many(DeterministicRng(1), -1)


class TestHospitalWorkload:
    def test_size_and_schema(self):
        workload = HospitalWorkload.generate(200, seed=1)
        assert workload.size == 200
        assert workload.schema == hospital_schema()
        assert workload.hospitals == (1, 2, 3)

    def test_marginals_are_roughly_right(self):
        workload = HospitalWorkload.generate(3000, seed=2)
        h3 = len(workload.relation.select_equal("hospital", 3)) / workload.size
        fatal = len(workload.relation.select_equal("outcome", FATAL)) / workload.size
        assert 0.44 < h3 < 0.56
        assert 0.05 < fatal < 0.12

    def test_target_patient_is_planted(self):
        workload = HospitalWorkload.generate(100, target_name="John", seed=3)
        assert workload.size == 101
        johns = workload.relation.select_equal("name", "John")
        assert len(johns) == 1
        assert johns.tuples[0].value("hospital") == workload.target_hospital
        assert johns.tuples[0].value("outcome") == workload.target_outcome

    def test_alex_queries_are_the_paper_sequence(self):
        workload = HospitalWorkload.generate(50, seed=4)
        queries = workload.alex_queries()
        assert len(queries) == 4
        assert [q.attribute for q in queries] == ["hospital", "hospital", "hospital", "outcome"]
        assert queries[-1].value == FATAL

    def test_true_fatality_ratio(self):
        workload = HospitalWorkload.generate(500, seed=5)
        for hospital in (1, 2, 3):
            ratio = workload.true_fatality_ratio(hospital)
            assert 0.0 <= ratio <= 1.0
        assert workload.true_fatality_ratio(99) == 0.0

    def test_generation_is_reproducible(self):
        assert (
            HospitalWorkload.generate(80, seed=6).relation
            == HospitalWorkload.generate(80, seed=6).relation
        )

    def test_outcomes_are_binary(self):
        workload = HospitalWorkload.generate(150, seed=7)
        assert workload.relation.distinct_values("outcome") <= {FATAL, HEALTHY}

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            HospitalWorkload.generate(0)
        with pytest.raises(ValueError):
            HospitalWorkload.generate(10, outcome_rates=(0.1, 0.2, 0.7))


class TestEmployeeWorkload:
    def test_size_and_uniqueness_of_names(self):
        workload = EmployeeWorkload.generate(150, seed=1)
        assert workload.size == 150
        assert len(workload.relation.distinct_values("name")) == 150

    def test_salaries_within_range(self):
        workload = EmployeeWorkload.generate(200, seed=2)
        salaries = [t.value("salary") for t in workload.relation]
        assert min(salaries) >= 1000 and max(salaries) <= 9999

    def test_departments_from_configured_set(self):
        workload = EmployeeWorkload.generate(100, departments=("A", "B"), seed=3)
        assert workload.relation.distinct_values("dept") <= {"A", "B"}

    def test_query_helpers(self):
        workload = EmployeeWorkload.generate(10, seed=4)
        assert workload.department_query().attribute == "dept"
        assert workload.name_query(3).value == "emp3"

    def test_empty_workload(self):
        assert EmployeeWorkload.generate(0, seed=5).size == 0


class TestSyntheticGenerator:
    def test_generates_valid_tuples(self):
        schema = RelationSchema(
            "T", [Attribute.string("label", 6), Attribute.integer("count", 4)]
        )
        generator = SyntheticRelationGenerator(schema)
        relation = generator.generate(50, seed=1)
        assert len(relation) == 50
        for t in relation:
            assert isinstance(t.value("label"), str)
            assert isinstance(t.value("count"), int)

    def test_custom_distribution_is_used(self):
        schema = RelationSchema("T", [Attribute.string("label", 6)])
        generator = SyntheticRelationGenerator(
            schema, {"label": CategoricalDistribution(["x"], [1.0])}
        )
        relation = generator.generate(20, seed=2)
        assert relation.distinct_values("label") == {"x"}

    def test_unknown_attribute_distribution_rejected(self):
        schema = RelationSchema("T", [Attribute.string("label", 6)])
        with pytest.raises(Exception):
            SyntheticRelationGenerator(schema, {"nope": CategoricalDistribution(["x"], [1.0])})

    def test_invalid_size(self):
        schema = RelationSchema("T", [Attribute.string("label", 6)])
        with pytest.raises(ValueError):
            SyntheticRelationGenerator(schema).generate(-1)


class TestQueryWorkloads:
    def test_queries_over_values(self):
        queries = queries_over_values("dept", ["HR", "IT"])
        assert [q.value for q in queries] == ["HR", "IT"]

    def test_random_hit_queries_match_existing_values(self, employee_workload):
        queries = random_equality_queries(
            employee_workload.relation, "dept", 20, seed=1, hit_probability=1.0
        )
        present = employee_workload.relation.distinct_values("dept")
        assert all(q.value in present for q in queries)

    def test_random_miss_queries_never_match(self, employee_workload):
        queries = random_equality_queries(
            employee_workload.relation, "salary", 10, seed=2, hit_probability=0.0
        )
        present = employee_workload.relation.distinct_values("salary")
        assert all(q.value not in present for q in queries)

    def test_count_and_validation(self, employee_workload):
        assert len(random_equality_queries(employee_workload.relation, "dept", 7, seed=3)) == 7
        with pytest.raises(ValueError):
            random_equality_queries(employee_workload.relation, "dept", -1)
        with pytest.raises(ValueError):
            random_equality_queries(employee_workload.relation, "dept", 1, hit_probability=2.0)

    def test_queries_are_selections(self, employee_workload):
        queries = random_equality_queries(employee_workload.relation, "dept", 5, seed=4)
        assert all(isinstance(q, Selection) for q in queries)
