"""Distribution-level properties: tail mass, normalization, determinism.

`tests/workloads/test_workloads.py` checks the distributions inside the
hospital workload; these tests pin the statistical contracts the bench
harness's zipfian axis and the cache tier's hot-key assumption lean on.
"""

from __future__ import annotations

from collections import Counter

import pytest

from repro.crypto.rng import DeterministicRng
from repro.workloads.distributions import (
    CategoricalDistribution,
    ZipfDistribution,
)

DRAWS = 4000


def _frequencies(distribution, seed: int = 7, draws: int = DRAWS) -> Counter:
    rng = DeterministicRng(seed)
    return Counter(distribution.sample_many(rng, draws))


class TestZipfTailMass:
    def test_head_mass_matches_the_analytical_weights(self):
        # With exponent 1.0 over 10 ranks, rank 0's share is
        # 1 / sum(1/(r+1)) = 1/H_10 ~ 0.3414.
        values = list(range(10))
        harmonic = sum(1.0 / (rank + 1) for rank in range(10))
        expected_head = 1.0 / harmonic
        counts = _frequencies(ZipfDistribution(values, exponent=1.0))
        assert counts[0] / DRAWS == pytest.approx(expected_head, abs=0.04)

    def test_tail_mass_shrinks_as_the_exponent_grows(self):
        values = list(range(50))
        tail = set(values[10:])

        def tail_share(exponent: float) -> float:
            counts = _frequencies(ZipfDistribution(values, exponent=exponent))
            return sum(counts[v] for v in tail) / DRAWS

        flat, skewed, extreme = tail_share(0.5), tail_share(1.1), tail_share(2.0)
        assert flat > skewed > extreme
        # Exponent >= 1.1 is the regime the cache tier targets: the top-10
        # keys of 50 carry roughly 70% of the traffic, and by exponent 2
        # the tail has all but vanished.
        assert skewed < 0.35
        assert extreme < 0.08

    def test_exponent_zero_is_uniform(self):
        counts = _frequencies(ZipfDistribution(["a", "b", "c", "d"], exponent=0.0))
        for value in "abcd":
            assert counts[value] / DRAWS == pytest.approx(0.25, abs=0.04)


class TestCategoricalValidation:
    def test_probabilities_are_normalized(self):
        dist = CategoricalDistribution(["a", "b"], [2.0, 6.0])
        assert dist.probabilities == pytest.approx([0.25, 0.75])
        assert sum(dist.probabilities) == pytest.approx(1.0)

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="equal length"):
            CategoricalDistribution(["a", "b", "c"], [0.5, 0.5])

    def test_empty_support_rejected(self):
        with pytest.raises(ValueError, match="at least one category"):
            CategoricalDistribution([], [])

    def test_zero_total_mass_rejected(self):
        with pytest.raises(ValueError, match="positive"):
            CategoricalDistribution(["a"], [0.0])

    def test_negative_probability_rejected(self):
        with pytest.raises(ValueError, match="non-negative"):
            CategoricalDistribution(["a", "b"], [1.5, -0.5])


class TestDeterministicSampling:
    def test_same_seed_replays_the_same_sequence(self):
        dist = ZipfDistribution(list(range(32)), exponent=1.1)
        first = dist.sample_many(DeterministicRng(42), 200)
        second = dist.sample_many(DeterministicRng(42), 200)
        assert first == second

    def test_different_seeds_diverge(self):
        dist = ZipfDistribution(list(range(32)), exponent=1.1)
        assert dist.sample_many(DeterministicRng(1), 200) != dist.sample_many(
            DeterministicRng(2), 200
        )

    def test_categorical_is_deterministic_too(self):
        dist = CategoricalDistribution(["x", "y", "z"], [0.2, 0.3, 0.5])
        assert dist.sample_many(DeterministicRng(9), 100) == dist.sample_many(
            DeterministicRng(9), 100
        )
