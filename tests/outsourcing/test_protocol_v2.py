"""Tests for protocol v2: new message kinds, versioning, wire dispatch."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dph import EncryptedQuery, EncryptedRelation, EncryptedTuple, EvaluationResult
from repro.outsourcing.protocol import (
    Message,
    MessageKind,
    MessageV2,
    PROTOCOL_V1,
    PROTOCOL_V2,
    ProtocolError,
    SUPPORTED_VERSIONS,
    V2_MAGIC,
    decode_count,
    decode_evaluation_result,
    decode_query_batch,
    decode_result_batch,
    decode_tuple_ids,
    encode_count,
    encode_evaluation_result,
    encode_query_batch,
    encode_result_batch,
    encode_tuple_ids,
    negotiate_version,
    parse_message,
    peek_version,
)
from repro.relational import RelationSchema, Selection


# --------------------------------------------------------------------------- #
# Hypothesis strategies for the new body types
# --------------------------------------------------------------------------- #

tuple_ids_strategy = st.lists(st.binary(min_size=1, max_size=24), max_size=8)

queries_strategy = st.lists(
    st.builds(
        EncryptedQuery,
        scheme_name=st.text(min_size=1, max_size=12),
        tokens=st.lists(st.binary(min_size=1, max_size=24), min_size=1, max_size=4).map(tuple),
        metadata=st.binary(max_size=12),
    ),
    max_size=5,
)

kinds_strategy = st.sampled_from(list(MessageKind))
names_strategy = st.text(max_size=20)
bodies_strategy = st.binary(max_size=64)


@given(tuple_ids=tuple_ids_strategy)
@settings(max_examples=60, deadline=None)
def test_property_tuple_ids_roundtrip(tuple_ids):
    assert decode_tuple_ids(encode_tuple_ids(tuple_ids)) == tuple(tuple_ids)


@given(queries=queries_strategy)
@settings(max_examples=60, deadline=None)
def test_property_query_batch_roundtrip(queries):
    assert decode_query_batch(encode_query_batch(queries)) == tuple(queries)


@given(kind=kinds_strategy, name=names_strategy, body=bodies_strategy)
@settings(max_examples=60, deadline=None)
def test_property_v2_envelope_roundtrip(kind, name, body):
    message = MessageV2(kind=kind, relation_name=name, body=body)
    assert MessageV2.from_bytes(message.to_bytes()) == message
    assert parse_message(message.to_bytes()) == message


@given(kind=kinds_strategy, name=names_strategy, body=bodies_strategy)
@settings(max_examples=60, deadline=None)
def test_property_v2_envelope_truncation_rejected(kind, name, body):
    raw = MessageV2(kind=kind, relation_name=name, body=body).to_bytes()
    with pytest.raises(ProtocolError):
        MessageV2.from_bytes(raw[:-1])
    with pytest.raises(ProtocolError):
        MessageV2.from_bytes(raw + b"x")


@given(tuple_ids=tuple_ids_strategy)
@settings(max_examples=30, deadline=None)
def test_property_tuple_ids_trailing_bytes_rejected(tuple_ids):
    with pytest.raises(ProtocolError):
        decode_tuple_ids(encode_tuple_ids(tuple_ids) + b"!")


class TestEvaluationResultEncoding:
    def _result(self, swp_dph, employee_relation) -> EvaluationResult:
        encrypted = swp_dph.encrypt_relation(employee_relation)
        query = swp_dph.encrypt_query(Selection.equals("dept", "HR"))
        return swp_dph.server_evaluator().evaluate(query, encrypted)

    def test_roundtrip_preserves_statistics(self, swp_dph, employee_relation):
        result = self._result(swp_dph, employee_relation)
        decoded, consumed = decode_evaluation_result(encode_evaluation_result(result))
        assert consumed == len(encode_evaluation_result(result))
        assert decoded.matching.encrypted_tuples == result.matching.encrypted_tuples
        assert decoded.examined == result.examined
        assert decoded.token_evaluations == result.token_evaluations

    def test_result_batch_roundtrip(self, swp_dph, employee_relation):
        result = self._result(swp_dph, employee_relation)
        decoded = decode_result_batch(encode_result_batch([result, result]))
        assert len(decoded) == 2
        assert decoded[0].examined == result.examined

    def test_truncated_statistics_rejected(self, swp_dph, employee_relation):
        raw = encode_evaluation_result(self._result(swp_dph, employee_relation))
        with pytest.raises(ProtocolError):
            decode_evaluation_result(raw[:-1])

    def test_result_batch_trailing_bytes_rejected(self, swp_dph, employee_relation):
        raw = encode_result_batch([self._result(swp_dph, employee_relation)])
        with pytest.raises(ProtocolError):
            decode_result_batch(raw + b"z")


class TestCounts:
    def test_roundtrip(self):
        assert decode_count(encode_count(0)) == 0
        assert decode_count(encode_count(12345)) == 12345

    def test_negative_rejected(self):
        with pytest.raises(ProtocolError):
            encode_count(-1)

    def test_malformed_rejected(self):
        with pytest.raises(ProtocolError):
            decode_count(b"\x00" * 7)


class TestVersioning:
    def test_peek_distinguishes_versions(self):
        v1 = Message(kind=MessageKind.QUERY, relation_name="emp", body=b"b")
        v2 = MessageV2(kind=MessageKind.QUERY, relation_name="emp", body=b"b")
        assert peek_version(v1.to_bytes()) == PROTOCOL_V1
        assert peek_version(v2.to_bytes()) == PROTOCOL_V2
        assert v1.version == PROTOCOL_V1
        assert v2.version == PROTOCOL_V2

    def test_unknown_future_version_rejected(self):
        raw = V2_MAGIC + bytes([7]) + b"\x00" * 12
        assert peek_version(raw) == 7
        with pytest.raises(ProtocolError):
            MessageV2.from_bytes(raw)
        with pytest.raises(ProtocolError):
            parse_message(raw)

    def test_v2_only_kind_rejected_in_v1_envelope(self):
        for kind in (MessageKind.DELETE_TUPLES, MessageKind.BATCH_QUERY,
                     MessageKind.BATCH_RESULT):
            raw = Message(kind=kind, relation_name="emp").to_bytes()
            with pytest.raises(ProtocolError, match="requires protocol version"):
                Message.from_bytes(raw)

    def test_negotiation_picks_highest_common(self):
        assert negotiate_version((1, 2), (1, 2)) == 2
        assert negotiate_version((1,), (1, 2)) == 1
        assert negotiate_version(SUPPORTED_VERSIONS, (2,)) == 2

    def test_negotiation_fails_without_common_version(self):
        with pytest.raises(ProtocolError):
            negotiate_version((1,), (2,))


class TestWireDispatch:
    """The server's handle_message speaks both envelope versions."""

    @pytest.fixture
    def loaded_server(self, swp_dph, employee_relation):
        from repro.outsourcing import OutsourcedDatabaseServer
        from repro.outsourcing.protocol import encode_encrypted_relation

        server = OutsourcedDatabaseServer()
        server.register_evaluator("Emp", swp_dph.server_evaluator())
        store = MessageV2(
            kind=MessageKind.STORE_RELATION,
            relation_name="Emp",
            body=encode_encrypted_relation(swp_dph.encrypt_relation(employee_relation)),
        )
        response = parse_message(server.handle_message(store.to_bytes()))
        assert response.kind is MessageKind.ACK
        assert decode_count(response.body) == len(employee_relation)
        return server

    def test_query_v2_carries_statistics(self, loaded_server, swp_dph):
        from repro.outsourcing.protocol import encode_encrypted_query

        query = MessageV2(
            kind=MessageKind.QUERY,
            relation_name="Emp",
            body=encode_encrypted_query(swp_dph.encrypt_query(Selection.equals("dept", "HR"))),
        )
        response = parse_message(loaded_server.handle_message(query.to_bytes()))
        assert response.kind is MessageKind.QUERY_RESULT
        assert response.version == PROTOCOL_V2
        result, _ = decode_evaluation_result(response.body)
        assert len(result.matching) == 2
        assert result.examined == 5

    def test_query_v1_is_still_served(self, loaded_server, swp_dph):
        from repro.outsourcing.protocol import (
            decode_encrypted_relation,
            encode_encrypted_query,
        )

        query = Message(
            kind=MessageKind.QUERY,
            relation_name="Emp",
            body=encode_encrypted_query(swp_dph.encrypt_query(Selection.equals("dept", "IT"))),
        )
        response = parse_message(loaded_server.handle_message(query.to_bytes()))
        assert response.version == PROTOCOL_V1
        assert response.kind is MessageKind.QUERY_RESULT
        assert len(decode_encrypted_relation(response.body)) == 2

    def test_delete_tuples_by_id(self, loaded_server):
        stored = loaded_server.stored_relation("Emp")
        victims = [t.tuple_id for t in stored.encrypted_tuples[:2]]
        delete = MessageV2(
            kind=MessageKind.DELETE_TUPLES,
            relation_name="Emp",
            body=encode_tuple_ids(victims + [b"no-such-id"]),
        )
        response = parse_message(loaded_server.handle_message(delete.to_bytes()))
        assert response.kind is MessageKind.ACK
        assert decode_count(response.body) == 2
        assert len(loaded_server.stored_relation("Emp")) == 3

    def test_batch_query(self, loaded_server, swp_dph):
        queries = [
            swp_dph.encrypt_query(Selection.equals("dept", "HR")),
            swp_dph.encrypt_query(Selection.equals("dept", "SALES")),
        ]
        batch = MessageV2(
            kind=MessageKind.BATCH_QUERY,
            relation_name="Emp",
            body=encode_query_batch(queries),
        )
        response = parse_message(loaded_server.handle_message(batch.to_bytes()))
        assert response.kind is MessageKind.BATCH_RESULT
        results = decode_result_batch(response.body)
        assert [len(r.matching) for r in results] == [2, 1]

    def test_errors_come_back_as_error_messages(self, loaded_server, swp_dph):
        from repro.outsourcing.protocol import encode_encrypted_query

        query = MessageV2(
            kind=MessageKind.QUERY,
            relation_name="missing",
            body=encode_encrypted_query(swp_dph.encrypt_query(Selection.equals("dept", "HR"))),
        )
        response = parse_message(loaded_server.handle_message(query.to_bytes()))
        assert response.kind is MessageKind.ERROR
        assert b"missing" in response.body

    def test_malformed_body_comes_back_as_error(self, loaded_server):
        bad = MessageV2(kind=MessageKind.DELETE_TUPLES, relation_name="Emp", body=b"\x01")
        response = parse_message(loaded_server.handle_message(bad.to_bytes()))
        assert response.kind is MessageKind.ERROR

    def test_list_tuple_ids_returns_ids_without_ciphertexts(self, loaded_server):
        stored = loaded_server.stored_relation("Emp")
        request = MessageV2(kind=MessageKind.LIST_TUPLE_IDS, relation_name="Emp")
        response = parse_message(loaded_server.handle_message(request.to_bytes()))
        assert response.kind is MessageKind.TUPLE_IDS
        ids = decode_tuple_ids(response.body)
        assert ids == tuple(t.tuple_id for t in stored.encrypted_tuples)
        # O(ids) on the wire: the response is far smaller than the data.
        assert len(response.body) < stored.size_in_bytes()

    def test_list_tuple_ids_rejects_a_body(self, loaded_server):
        request = MessageV2(
            kind=MessageKind.LIST_TUPLE_IDS, relation_name="Emp", body=b"junk"
        )
        response = parse_message(loaded_server.handle_message(request.to_bytes()))
        assert response.kind is MessageKind.ERROR
        assert b"no body" in response.body

    def test_list_tuple_ids_unknown_relation_is_an_error(self, loaded_server):
        request = MessageV2(kind=MessageKind.LIST_TUPLE_IDS, relation_name="missing")
        response = parse_message(loaded_server.handle_message(request.to_bytes()))
        assert response.kind is MessageKind.ERROR

    def test_list_tuple_ids_is_v2_only(self):
        # Hand-build a v1 envelope carrying the v2-only kind: rejected.
        raw = (
            (len("list-tuple-ids")).to_bytes(4, "big") + b"list-tuple-ids"
            + (3).to_bytes(4, "big") + b"Emp"
            + (0).to_bytes(4, "big")
        )
        with pytest.raises(ProtocolError, match="version >= 2"):
            Message.from_bytes(raw)

    def test_peek_envelope_matches_the_full_parse(self, loaded_server):
        from repro.outsourcing.protocol import peek_envelope

        for envelope in (
            MessageV2(kind=MessageKind.QUERY, relation_name="Emp", body=b"x" * 64),
            Message(kind=MessageKind.INSERT_TUPLE, relation_name="Other", body=b"y"),
            MessageV2(kind=MessageKind.LIST_TUPLE_IDS, relation_name="Emp"),
        ):
            raw = envelope.to_bytes()
            parsed = parse_message(raw)
            assert peek_envelope(raw) == (
                parsed.version, parsed.kind, parsed.relation_name
            )

    def test_peek_envelope_rejects_what_the_parsers_reject(self):
        from repro.outsourcing.protocol import peek_envelope

        good = MessageV2(kind=MessageKind.QUERY, relation_name="Emp", body=b"abc")
        raw = good.to_bytes()
        with pytest.raises(ProtocolError):
            peek_envelope(raw[:-1])  # truncated body
        with pytest.raises(ProtocolError):
            peek_envelope(raw + b"!")  # trailing bytes
        with pytest.raises(ProtocolError):
            peek_envelope(b"\x00\x00\x00\x05junk!")  # unknown kind
        # v2-only kind in a v1 envelope is still a protocol violation.
        v1_raw = (
            (len("batch-query")).to_bytes(4, "big") + b"batch-query"
            + (3).to_bytes(4, "big") + b"Emp"
            + (0).to_bytes(4, "big")
        )
        with pytest.raises(ProtocolError, match="version >= 2"):
            peek_envelope(v1_raw)

    def test_list_tuple_ids_is_audited(self, loaded_server):
        from repro.outsourcing.audit import AuditEventKind

        loaded_server.list_tuple_ids("Emp")
        events = loaded_server.audit_log.events_of_kind(AuditEventKind.TUPLE_IDS_LISTED)
        assert events and events[-1].detail["id_count"] == 5
