"""The audit log's optional ring-buffer cap."""

from __future__ import annotations

import pytest

from repro.outsourcing.audit import AuditEventKind, ServerAuditLog


class TestRingBuffer:
    def test_unbounded_by_default(self):
        log = ServerAuditLog()
        assert log.max_events is None
        for i in range(1000):
            log.record(AuditEventKind.QUERY_EXECUTED, "Emp", result_size=i)
        assert len(log) == 1000
        assert log.dropped_events == 0

    def test_cap_keeps_the_newest_events(self):
        log = ServerAuditLog(max_events=10)
        for i in range(25):
            log.record(AuditEventKind.QUERY_EXECUTED, "Emp", result_size=i)
        assert len(log) == 10
        assert log.dropped_events == 15
        assert [e.detail["result_size"] for e in log.events] == list(range(15, 25))

    def test_cap_not_reached_drops_nothing(self):
        log = ServerAuditLog(max_events=10)
        for i in range(7):
            log.record(AuditEventKind.TUPLE_INSERTED, "Emp")
        assert len(log) == 7
        assert log.dropped_events == 0

    def test_summary_and_result_sizes_read_the_retained_window(self):
        log = ServerAuditLog(max_events=3)
        log.record(AuditEventKind.RELATION_STORED, "Emp", tuple_count=5)
        for size in (1, 2, 3):
            log.record(AuditEventKind.QUERY_EXECUTED, "Emp", result_size=size)
        assert log.summary()["query-executed"] == 3
        assert log.summary()["relation-stored"] == 0  # evicted
        assert log.query_result_sizes("Emp") == [1, 2, 3]

    def test_invalid_cap_rejected(self):
        with pytest.raises(ValueError):
            ServerAuditLog(max_events=0)
        with pytest.raises(ValueError):
            ServerAuditLog(max_events=-5)
