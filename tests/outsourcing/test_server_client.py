"""Tests for the client/server outsourcing layer and the audit log."""

from __future__ import annotations

import pytest

from repro.core import SearchableSelectDph
from repro.outsourcing import (
    AuditEventKind,
    ClientError,
    OutsourcedDatabaseServer,
    OutsourcingClient,
    ServerError,
)
from repro.relational import Relation, RelationSchema, Selection
from repro.relational.tuples import RelationTuple
from repro.schemes import HacigumusDph


@pytest.fixture
def server():
    return OutsourcedDatabaseServer()


@pytest.fixture
def client(swp_dph, server):
    return OutsourcingClient(swp_dph, server)


class TestServer:
    def test_store_and_retrieve(self, swp_dph, employee_relation, server):
        encrypted = swp_dph.encrypt_relation(employee_relation)
        server.store_relation("emp", encrypted, swp_dph.server_evaluator())
        assert server.relation_names == ("emp",)
        assert server.stored_relation("emp") is encrypted
        assert server.storage_in_bytes("emp") == encrypted.size_in_bytes()
        assert server.storage_in_bytes() == encrypted.size_in_bytes()

    def test_empty_name_rejected(self, swp_dph, employee_relation, server):
        with pytest.raises(ServerError):
            server.store_relation("", swp_dph.encrypt_relation(employee_relation),
                                  swp_dph.server_evaluator())

    def test_unknown_relation_rejected(self, server, swp_dph):
        with pytest.raises(ServerError):
            server.stored_relation("missing")
        with pytest.raises(ServerError):
            server.execute_query("missing", swp_dph.encrypt_query(Selection.equals("dept", "HR")))

    def test_execute_query_and_audit(self, swp_dph, employee_relation, server):
        server.store_relation("emp", swp_dph.encrypt_relation(employee_relation),
                              swp_dph.server_evaluator())
        result = server.execute_query("emp", swp_dph.encrypt_query(Selection.equals("dept", "HR")))
        assert len(result.matching) == 2
        sizes = server.audit_log.query_result_sizes("emp")
        assert sizes == [2]
        assert server.audit_log.summary()["query-executed"] == 1

    def test_scheme_mismatch_rejected(self, swp_dph, employee_relation, server, employee_schema, secret_key, rng):
        server.store_relation("emp", swp_dph.encrypt_relation(employee_relation),
                              swp_dph.server_evaluator())
        other = HacigumusDph(employee_schema, secret_key, rng=rng)
        with pytest.raises(ServerError):
            server.execute_query("emp", other.encrypt_query(Selection.equals("dept", "HR")))

    def test_insert_tuple(self, swp_dph, employee_relation, employee_schema, server):
        server.store_relation("emp", swp_dph.encrypt_relation(employee_relation),
                              swp_dph.server_evaluator())
        new_tuple = RelationTuple(employee_schema, {"name": "Eve", "dept": "HR", "salary": 1})
        server.insert_tuple("emp", swp_dph.encrypt_tuple(new_tuple))
        assert len(server.stored_relation("emp")) == len(employee_relation) + 1
        assert len(server.audit_log.events_of_kind(AuditEventKind.TUPLE_INSERTED)) == 1


class TestClient:
    def test_outsource_and_select(self, client, employee_relation):
        shipped = client.outsource(employee_relation)
        assert shipped > 0
        outcome = client.select(Selection.equals("dept", "HR"))
        assert len(outcome.relation) == 2
        assert outcome.false_positives == 0

    def test_select_with_sql(self, client, employee_relation):
        client.outsource(employee_relation)
        outcome = client.select("SELECT name, salary FROM Emp WHERE dept = 'IT'")
        assert len(outcome.relation) == 2
        assert sorted(outcome.projected_rows) == [("Adams", 6100), ("Smith", 5200)]

    def test_retrieve_all(self, client, employee_relation):
        client.outsource(employee_relation)
        assert client.retrieve_all() == employee_relation

    def test_insert_then_select(self, client, employee_relation):
        client.outsource(employee_relation)
        client.insert({"name": "Zoe", "dept": "HR", "salary": 3000})
        outcome = client.select(Selection.equals("name", "Zoe"))
        assert len(outcome.relation) == 1

    def test_schema_mismatch_rejected(self, client):
        other = Relation(RelationSchema.parse("Other(x:string[3])"))
        with pytest.raises(ClientError):
            client.outsource(other)

    def test_relation_name_defaults_to_schema_name(self, client):
        assert client.relation_name == "Emp"

    def test_server_only_sees_ciphertext(self, client, employee_relation, server):
        client.outsource(employee_relation)
        stored = server.stored_relation("Emp")
        blob = b"".join(
            t.tuple_id + t.payload + b"".join(t.search_fields) + t.metadata
            for t in stored.encrypted_tuples
        )
        assert b"Montgomery" not in blob
        assert b"7500" not in blob


class TestEndToEndWithAllSchemes:
    def test_every_scheme_supports_the_client_workflow(self, all_schemes, employee_relation):
        for scheme in all_schemes:
            server = OutsourcedDatabaseServer()
            client = OutsourcingClient(scheme, server, relation_name=scheme.name)
            client.outsource(employee_relation)
            outcome = client.select(Selection.equals("dept", "HR"))
            assert len(outcome.relation) == 2
            assert outcome.relation == employee_relation.select_equal("dept", "HR")
