"""Crash-safety of the file storage backend's save path."""

from __future__ import annotations

import os

import pytest

from repro.outsourcing.storage import FileStorageBackend, StorageError


@pytest.fixture
def backend(tmp_path, swp_dph, employee_relation):
    storage = FileStorageBackend(tmp_path)
    storage.save("Emp", swp_dph.encrypt_relation(employee_relation))
    return storage


class TestAtomicSave:
    def test_save_replaces_atomically(self, backend, swp_dph, employee_relation):
        before = len(backend.load("Emp"))
        backend.save("Emp", swp_dph.encrypt_relation(employee_relation))
        assert len(backend.load("Emp")) == before

    def test_no_temp_files_survive_a_save(self, backend, tmp_path):
        leftovers = [p for p in tmp_path.iterdir() if p.suffix != ".rel"]
        assert leftovers == []

    def test_crash_during_write_preserves_the_old_relation(
        self, backend, tmp_path, swp_dph, employee_relation, monkeypatch
    ):
        """A failure after the bytes are partially written must not corrupt."""
        original = backend.load("Emp")

        def exploding_fsync(fd):
            raise OSError("disk pulled mid-write")

        monkeypatch.setattr(os, "fsync", exploding_fsync)
        with pytest.raises(StorageError, match="cannot save"):
            backend.save("Emp", swp_dph.encrypt_relation(employee_relation))
        monkeypatch.undo()

        # the stored relation is byte-identical to the pre-crash state...
        survived = backend.load("Emp")
        assert [t.tuple_id for t in survived] == [t.tuple_id for t in original]
        # ...and the aborted temp file was cleaned up
        assert [p for p in tmp_path.iterdir() if p.suffix == ".tmp"] == []

    def test_crash_during_rename_preserves_the_old_relation(
        self, backend, swp_dph, employee_relation, monkeypatch
    ):
        original = backend.load("Emp")

        def exploding_replace(src, dst):
            raise OSError("crashed before rename")

        monkeypatch.setattr(os, "replace", exploding_replace)
        with pytest.raises(StorageError, match="cannot save"):
            backend.save("Emp", swp_dph.encrypt_relation(employee_relation))
        monkeypatch.undo()
        assert [t.tuple_id for t in backend.load("Emp")] == [
            t.tuple_id for t in original
        ]

    def test_temp_files_are_invisible_to_names(self, backend, tmp_path):
        (tmp_path / ".deadbeef.rel.12345.tmp").write_bytes(b"partial garbage")
        assert backend.names() == ("Emp",)

    def test_fresh_save_failure_leaves_no_relation_behind(
        self, tmp_path, swp_dph, employee_relation, monkeypatch
    ):
        storage = FileStorageBackend(tmp_path / "fresh")

        def exploding_replace(src, dst):
            raise OSError("crashed")

        monkeypatch.setattr(os, "replace", exploding_replace)
        with pytest.raises(StorageError):
            storage.save("Emp", swp_dph.encrypt_relation(employee_relation))
        monkeypatch.undo()
        assert storage.names() == ()
        with pytest.raises(StorageError):
            storage.load("Emp")
