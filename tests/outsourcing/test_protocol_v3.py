"""The v3 envelope: trace ids on the wire and the O(1) raw-frame helpers."""

from __future__ import annotations

import pytest

from repro.outsourcing import protocol
from repro.outsourcing.protocol import (
    PROTOCOL_V1,
    PROTOCOL_V2,
    PROTOCOL_V3,
    TRACE_ID_SIZE,
    Message,
    MessageKind,
    MessageV2,
    ProtocolError,
)

TID = bytes(range(TRACE_ID_SIZE))


def _v2_frame(body: bytes = b"payload") -> bytes:
    return MessageV2(
        kind=MessageKind.QUERY, relation_name="Emp", body=body
    ).to_bytes()


class TestMessageV3:
    def test_version_follows_the_trace_id(self):
        untraced = MessageV2(kind=MessageKind.QUERY, relation_name="Emp")
        traced = MessageV2(
            kind=MessageKind.QUERY, relation_name="Emp", trace_id=TID
        )
        assert untraced.version == PROTOCOL_V2
        assert traced.version == PROTOCOL_V3

    def test_round_trip_preserves_the_trace_id(self):
        message = MessageV2(
            kind=MessageKind.INSERT_TUPLE, relation_name="Emp", body=b"x" * 33,
            trace_id=TID,
        )
        parsed = MessageV2.from_bytes(message.to_bytes())
        assert parsed.trace_id == TID
        assert parsed.kind is MessageKind.INSERT_TUPLE
        assert parsed.relation_name == "Emp"
        assert parsed.body == b"x" * 33

    def test_wrong_size_trace_id_is_rejected_at_serialization(self):
        message = MessageV2(
            kind=MessageKind.QUERY, relation_name="Emp", trace_id=b"short"
        )
        with pytest.raises(ProtocolError, match="16 bytes"):
            message.to_bytes()

    def test_truncated_v3_frame_is_rejected(self):
        raw = protocol.attach_trace(_v2_frame(), TID)
        with pytest.raises(ProtocolError):
            MessageV2.from_bytes(raw[: len(raw) - TRACE_ID_SIZE + 3][:12])

    def test_supported_versions_advertise_v3(self):
        assert PROTOCOL_V3 in protocol.SUPPORTED_VERSIONS
        assert protocol.negotiate_version((1, 2, 3), (1, 2, 3)) == PROTOCOL_V3
        # a pre-trace peer drags the session down to what it speaks
        assert protocol.negotiate_version((1, 2, 3), (1, 2)) == PROTOCOL_V2
        assert protocol.negotiate_version((1, 2, 3), (1,)) == PROTOCOL_V1


class TestRawHelpers:
    def test_attach_flips_the_version_and_appends_the_id(self):
        raw = _v2_frame()
        traced = protocol.attach_trace(raw, TID)
        assert protocol.peek_version(traced) == PROTOCOL_V3
        assert traced[-TRACE_ID_SIZE:] == TID
        # the kind/name/body encoding is reused verbatim
        assert traced[len(protocol.V2_MAGIC) + 1: -TRACE_ID_SIZE] == raw[
            len(protocol.V2_MAGIC) + 1:
        ]

    def test_attach_is_an_identity_on_v1_frames(self):
        raw = Message(kind=MessageKind.QUERY, relation_name="Emp").to_bytes()
        assert protocol.attach_trace(raw, TID) == raw
        assert protocol.peek_version(raw) == PROTOCOL_V1

    def test_attach_twice_is_a_caller_bug(self):
        traced = protocol.attach_trace(_v2_frame(), TID)
        with pytest.raises(ProtocolError, match="v3"):
            protocol.attach_trace(traced, TID)

    def test_attach_validates_the_id_size(self):
        with pytest.raises(ProtocolError, match="16 bytes"):
            protocol.attach_trace(_v2_frame(), b"nope")

    def test_strip_restores_the_exact_v2_bytes(self):
        raw = _v2_frame(b"body bytes")
        assert protocol.strip_trace(protocol.attach_trace(raw, TID)) == raw

    def test_strip_passes_untraced_frames_through(self):
        raw = _v2_frame()
        assert protocol.strip_trace(raw) == raw
        v1 = Message(kind=MessageKind.QUERY, relation_name="Emp").to_bytes()
        assert protocol.strip_trace(v1) == v1

    def test_peek_trace_id(self):
        raw = _v2_frame()
        assert protocol.peek_trace_id(raw) is None
        assert protocol.peek_trace_id(protocol.attach_trace(raw, TID)) == TID

    def test_parse_message_handles_all_three_versions(self):
        v1 = Message(kind=MessageKind.QUERY, relation_name="Emp").to_bytes()
        v2 = _v2_frame()
        v3 = protocol.attach_trace(v2, TID)
        assert isinstance(protocol.parse_message(v1), Message)
        assert protocol.parse_message(v2).trace_id is None
        assert protocol.parse_message(v3).trace_id == TID

    def test_peek_envelope_accepts_v3(self):
        version, kind, relation = protocol.peek_envelope(
            protocol.attach_trace(_v2_frame(), TID)
        )
        assert version == PROTOCOL_V3
        assert kind is MessageKind.QUERY
        assert relation == "Emp"
