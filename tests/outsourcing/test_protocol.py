"""Tests for the byte-level wire format."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dph import EncryptedQuery, EncryptedRelation, EncryptedTuple
from repro.outsourcing.protocol import (
    Message,
    MessageKind,
    ProtocolError,
    decode_encrypted_query,
    decode_encrypted_relation,
    decode_encrypted_tuple,
    encode_encrypted_query,
    encode_encrypted_relation,
    encode_encrypted_tuple,
)
from repro.relational import RelationSchema, Selection


class TestTupleEncoding:
    def test_roundtrip(self):
        original = EncryptedTuple(
            tuple_id=b"id-bytes",
            payload=b"payload-bytes",
            search_fields=(b"f1", b"", b"field-3"),
            metadata=b"meta",
        )
        decoded, consumed = decode_encrypted_tuple(encode_encrypted_tuple(original))
        assert decoded == original
        assert consumed == len(encode_encrypted_tuple(original))

    def test_truncated_rejected(self):
        raw = encode_encrypted_tuple(EncryptedTuple(tuple_id=b"x", payload=b"y"))
        with pytest.raises(ProtocolError):
            decode_encrypted_tuple(raw[:-1])


class TestRelationEncoding:
    def test_roundtrip(self, swp_dph, employee_relation):
        encrypted = swp_dph.encrypt_relation(employee_relation)
        decoded = decode_encrypted_relation(encode_encrypted_relation(encrypted))
        assert decoded.encrypted_tuples == encrypted.encrypted_tuples
        assert decoded.schema.attribute_names == encrypted.schema.attribute_names
        # the decoded copy is still decryptable by the key holder
        assert swp_dph.decrypt_relation(decoded) == employee_relation

    def test_trailing_bytes_rejected(self, swp_dph, employee_relation):
        raw = encode_encrypted_relation(swp_dph.encrypt_relation(employee_relation))
        with pytest.raises(ProtocolError):
            decode_encrypted_relation(raw + b"extra")


class TestQueryEncoding:
    def test_roundtrip(self, swp_dph):
        query = swp_dph.encrypt_query(Selection.equals("dept", "HR"))
        assert decode_encrypted_query(encode_encrypted_query(query)) == query

    def test_roundtrip_with_metadata(self):
        query = EncryptedQuery(scheme_name="s", tokens=(b"t1", b"t2"), metadata=b"m")
        assert decode_encrypted_query(encode_encrypted_query(query)) == query

    def test_trailing_bytes_rejected(self, swp_dph):
        raw = encode_encrypted_query(swp_dph.encrypt_query(Selection.equals("dept", "HR")))
        with pytest.raises(ProtocolError):
            decode_encrypted_query(raw + b"!")


class TestMessageEnvelope:
    def test_roundtrip(self):
        message = Message(kind=MessageKind.QUERY, relation_name="emp", body=b"body")
        assert Message.from_bytes(message.to_bytes()) == message

    def test_unknown_kind_rejected(self):
        message = Message(kind=MessageKind.QUERY, relation_name="emp", body=b"")
        raw = message.to_bytes().replace(b"query", b"nosuc")
        with pytest.raises(ProtocolError):
            Message.from_bytes(raw)

    def test_trailing_bytes_rejected(self):
        raw = Message(kind=MessageKind.ERROR, relation_name="emp").to_bytes()
        with pytest.raises(ProtocolError):
            Message.from_bytes(raw + b"x")


@given(
    tuple_id=st.binary(min_size=1, max_size=20),
    payload=st.binary(min_size=0, max_size=60),
    fields=st.lists(st.binary(min_size=0, max_size=20), max_size=6),
    metadata=st.binary(min_size=0, max_size=20),
)
@settings(max_examples=60, deadline=None)
def test_property_tuple_encoding_roundtrip(tuple_id, payload, fields, metadata):
    original = EncryptedTuple(
        tuple_id=tuple_id, payload=payload, search_fields=tuple(fields), metadata=metadata
    )
    decoded, _ = decode_encrypted_tuple(encode_encrypted_tuple(original))
    assert decoded == original
