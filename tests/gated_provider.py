"""Event-gated provider used by the pipelining/concurrency tests.

Lives next to ``tests/conftest.py`` (which puts this directory on
``sys.path``) so net and cluster tests share one implementation.  A
"slow" relation is modelled deterministically: requests for a gated
relation block on a :class:`threading.Event` instead of a sleep, so
ordering assertions never race the clock.
"""

from __future__ import annotations

import threading

from repro.core.dph import EncryptedRelation
from repro.crypto.keys import SecretKey
from repro.outsourcing import OutsourcedDatabaseServer
from repro.outsourcing.protocol import parse_message
from repro.relational import RelationSchema
from repro.schemes.plaintext import PlaintextDph


class GatedServer(OutsourcedDatabaseServer):
    """A provider whose requests for chosen relations block on an event."""

    def __init__(self) -> None:
        super().__init__()
        self.gates: dict[str, threading.Event] = {}
        self.entered: dict[str, threading.Event] = {}

    def gate(self, relation: str) -> threading.Event:
        """Block every request for ``relation`` until the event is set."""
        self.gates[relation] = threading.Event()
        self.entered[relation] = threading.Event()
        return self.gates[relation]

    def handle_message(self, raw: bytes) -> bytes:
        name = parse_message(raw).relation_name
        gate = self.gates.get(name)
        if gate is not None:
            self.entered[name].set()
            assert gate.wait(timeout=30), f"gate for {name!r} never released"
        return super().handle_message(raw)


def store_empty(database: OutsourcedDatabaseServer, decl: str) -> None:
    """Create an empty (plaintext-scheme) relation on a provider."""
    schema = RelationSchema.parse(decl)
    scheme = PlaintextDph(schema, SecretKey.generate())
    database.store_relation(
        schema.name,
        EncryptedRelation(schema=schema, encrypted_tuples=()),
        scheme.server_evaluator(),
    )
