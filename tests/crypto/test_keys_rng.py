"""Tests for key management and the randomness sources."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.errors import KeyError_
from repro.crypto.keys import DEFAULT_SECURITY_PARAMETER, KeyHierarchy, SecretKey, generate_key
from repro.crypto.rng import DeterministicRng, SystemRng, default_rng


class TestGenerateKey:
    def test_default_length(self):
        assert len(generate_key()) == DEFAULT_SECURITY_PARAMETER // 8

    def test_custom_security_parameter(self):
        assert len(generate_key(128)) == 16

    def test_rejects_non_multiple_of_eight(self):
        with pytest.raises(KeyError_):
            generate_key(129)

    def test_rejects_weak_parameters(self):
        with pytest.raises(KeyError_):
            generate_key(64)

    def test_deterministic_with_seeded_rng(self):
        assert generate_key(rng=DeterministicRng(1)) == generate_key(rng=DeterministicRng(1))
        assert generate_key(rng=DeterministicRng(1)) != generate_key(rng=DeterministicRng(2))


class TestSecretKey:
    def test_security_parameter(self):
        assert SecretKey(b"x" * 32).security_parameter == 256

    def test_rejects_short_material(self):
        with pytest.raises(KeyError_):
            SecretKey(b"short")

    def test_repr_hides_material(self):
        key = SecretKey(b"supersecretsupersecret!!")
        assert "supersecret" not in repr(key)

    def test_subkeys_differ_by_label(self):
        key = SecretKey.generate(rng=DeterministicRng(3))
        assert key.subkey("a") != key.subkey("b")

    def test_generate_uses_rng(self):
        assert (
            SecretKey.generate(rng=DeterministicRng(4)).material
            == SecretKey.generate(rng=DeterministicRng(4)).material
        )


class TestKeyHierarchy:
    def test_caches_derivations(self):
        hierarchy = KeyHierarchy(SecretKey(b"x" * 32))
        assert hierarchy.get("label") is hierarchy.get("label")

    def test_labels_are_independent(self):
        hierarchy = KeyHierarchy(SecretKey(b"x" * 32))
        assert hierarchy.get("a") != hierarchy.get("b")

    def test_lengths_are_honoured(self):
        hierarchy = KeyHierarchy(SecretKey(b"x" * 32))
        assert len(hierarchy.get("a", 48)) == 48

    def test_master_accessor(self):
        master = SecretKey(b"x" * 32)
        assert KeyHierarchy(master).master is master


class TestDeterministicRng:
    def test_same_seed_same_stream(self):
        assert DeterministicRng(7).bytes(100) == DeterministicRng(7).bytes(100)

    def test_different_seeds_differ(self):
        assert DeterministicRng(7).bytes(32) != DeterministicRng(8).bytes(32)

    def test_string_and_bytes_seeds(self):
        assert DeterministicRng("seed").bytes(16) == DeterministicRng("seed").bytes(16)
        assert DeterministicRng(b"seed").bytes(16) == DeterministicRng(b"seed").bytes(16)

    def test_fork_is_independent_but_deterministic(self):
        base = DeterministicRng(7)
        assert base.fork("a").bytes(16) == DeterministicRng(7).fork("a").bytes(16)
        assert DeterministicRng(7).fork("a").bytes(16) != DeterministicRng(7).fork("b").bytes(16)

    def test_randint_bounds(self):
        rng = DeterministicRng(1)
        values = [rng.randint(3, 9) for _ in range(200)]
        assert min(values) >= 3 and max(values) <= 9
        assert set(values) == set(range(3, 10))

    def test_randint_single_value(self):
        assert DeterministicRng(1).randint(5, 5) == 5

    def test_randint_invalid_range(self):
        with pytest.raises(ValueError):
            DeterministicRng(1).randint(5, 4)

    def test_bit_is_binary_and_balanced(self):
        rng = DeterministicRng(2)
        bits = [rng.bit() for _ in range(400)]
        assert set(bits) <= {0, 1}
        assert 120 < sum(bits) < 280

    def test_choice_and_shuffle(self):
        rng = DeterministicRng(3)
        items = list(range(10))
        assert rng.choice(items) in items
        shuffled = rng.shuffle(items)
        assert sorted(shuffled) == items
        assert items == list(range(10))  # input untouched
        with pytest.raises(ValueError):
            rng.choice([])

    def test_random_in_unit_interval(self):
        rng = DeterministicRng(4)
        values = [rng.random() for _ in range(100)]
        assert all(0.0 <= v < 1.0 for v in values)

    def test_sample_distribution_respects_support(self):
        rng = DeterministicRng(5)
        draws = [rng.sample_distribution([0.0, 1.0, 0.0]) for _ in range(50)]
        assert set(draws) == {1}

    def test_sample_distribution_rejects_bad_weights(self):
        rng = DeterministicRng(6)
        with pytest.raises(ValueError):
            rng.sample_distribution([0.0, 0.0])
        with pytest.raises(ValueError):
            rng.sample_distribution([0.5, -0.5, 1.0])

    def test_negative_byte_count_rejected(self):
        with pytest.raises(ValueError):
            DeterministicRng(1).bytes(-1)


class TestSystemRng:
    def test_produces_requested_length(self):
        assert len(SystemRng().bytes(33)) == 33

    def test_default_rng_dispatch(self):
        assert isinstance(default_rng(), SystemRng)
        assert isinstance(default_rng(5), DeterministicRng)


@given(seed=st.integers(min_value=0, max_value=10**9),
       low=st.integers(min_value=-1000, max_value=1000),
       span=st.integers(min_value=0, max_value=500))
@settings(max_examples=60, deadline=None)
def test_property_randint_within_bounds(seed, low, span):
    rng = DeterministicRng(seed)
    value = rng.randint(low, low + span)
    assert low <= value <= low + span
