"""Tests for authenticated symmetric encryption, MACs and key derivation."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.errors import DecryptionError, IntegrityError, KeyError_, ParameterError
from repro.crypto.kdf import derive_key, hkdf_expand, hkdf_extract
from repro.crypto.mac import TAG_LEN, Hmac, verify_mac
from repro.crypto.rng import DeterministicRng
from repro.crypto.symmetric import NONCE_LEN, SymmetricCipher, SymmetricCiphertext

KEY = b"k" * 32


class TestHmac:
    def test_tag_length(self):
        assert len(Hmac(KEY).tag(b"m")) == TAG_LEN

    def test_verify_accepts_valid_tag(self):
        mac = Hmac(KEY)
        mac.verify(b"m", mac.tag(b"m"))

    def test_verify_rejects_modified_message(self):
        mac = Hmac(KEY)
        tag = mac.tag(b"m")
        with pytest.raises(IntegrityError):
            mac.verify(b"m2", tag)

    def test_verify_rejects_modified_tag(self):
        mac = Hmac(KEY)
        tag = bytearray(mac.tag(b"m"))
        tag[0] ^= 1
        with pytest.raises(IntegrityError):
            mac.verify(b"m", bytes(tag))

    def test_short_key_rejected(self):
        with pytest.raises(KeyError_):
            Hmac(b"short")

    def test_one_shot_helper(self):
        verify_mac(KEY, b"m", Hmac(KEY).tag(b"m"))


class TestKdf:
    def test_derive_key_is_deterministic(self):
        assert derive_key(KEY, "a") == derive_key(KEY, "a")

    def test_labels_separate_keys(self):
        assert derive_key(KEY, "a") != derive_key(KEY, "b")

    def test_lengths(self):
        assert len(derive_key(KEY, "a", 48)) == 48

    def test_expand_rejects_bad_lengths(self):
        prk = hkdf_extract(b"salt", KEY)
        with pytest.raises(ParameterError):
            hkdf_expand(prk, b"info", 0)
        with pytest.raises(ParameterError):
            hkdf_expand(prk, b"info", 255 * 32 + 1)

    def test_extract_handles_empty_salt(self):
        assert hkdf_extract(b"", KEY) == hkdf_extract(b"", KEY)


class TestSymmetricCipher:
    def test_roundtrip(self):
        cipher = SymmetricCipher(KEY, rng=DeterministicRng(1))
        message = b"tuple payload bytes"
        assert cipher.decrypt(cipher.encrypt(message)) == message

    def test_randomized_encryption(self):
        cipher = SymmetricCipher(KEY, rng=DeterministicRng(2))
        first = cipher.encrypt(b"same message")
        second = cipher.encrypt(b"same message")
        assert first.body != second.body
        assert first.nonce != second.nonce

    def test_tampered_body_rejected(self):
        cipher = SymmetricCipher(KEY, rng=DeterministicRng(3))
        ciphertext = cipher.encrypt(b"message")
        tampered = SymmetricCiphertext(
            nonce=ciphertext.nonce,
            tag=ciphertext.tag,
            body=bytes([ciphertext.body[0] ^ 1]) + ciphertext.body[1:],
        )
        with pytest.raises(IntegrityError):
            cipher.decrypt(tampered)

    def test_associated_data_is_bound(self):
        cipher = SymmetricCipher(KEY, rng=DeterministicRng(4))
        ciphertext = cipher.encrypt(b"message", associated_data=b"tuple-1")
        with pytest.raises(IntegrityError):
            cipher.decrypt(ciphertext, associated_data=b"tuple-2")
        assert cipher.decrypt(ciphertext, associated_data=b"tuple-1") == b"message"

    def test_wire_format_roundtrip(self):
        cipher = SymmetricCipher(KEY, rng=DeterministicRng(5))
        raw = cipher.encrypt_bytes(b"message", associated_data=b"ad")
        assert cipher.decrypt_bytes(raw, associated_data=b"ad") == b"message"

    def test_wire_format_layout(self):
        cipher = SymmetricCipher(KEY, rng=DeterministicRng(6))
        ciphertext = cipher.encrypt(b"12345")
        raw = ciphertext.to_bytes()
        assert len(raw) == NONCE_LEN + TAG_LEN + 5
        parsed = SymmetricCiphertext.from_bytes(raw)
        assert parsed == ciphertext

    def test_truncated_wire_format_rejected(self):
        with pytest.raises(DecryptionError):
            SymmetricCiphertext.from_bytes(b"too short")

    def test_short_key_rejected(self):
        with pytest.raises(KeyError_):
            SymmetricCipher(b"short")

    def test_wrong_key_fails_integrity(self):
        first = SymmetricCipher(KEY, rng=DeterministicRng(7))
        second = SymmetricCipher(b"q" * 32)
        with pytest.raises(IntegrityError):
            second.decrypt(first.encrypt(b"message"))


@given(message=st.binary(min_size=0, max_size=300), ad=st.binary(min_size=0, max_size=30))
@settings(max_examples=60, deadline=None)
def test_property_symmetric_roundtrip(message, ad):
    cipher = SymmetricCipher(KEY, rng=DeterministicRng(1000))
    assert cipher.decrypt(cipher.encrypt(message, ad), ad) == message
