"""Tests for the block cipher and its modes of operation."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.blockcipher import BLOCK_LEN, BlockCipher
from repro.crypto.errors import DecryptionError, KeyError_, ParameterError
from repro.crypto.modes import CbcMode, CtrMode, EcbMode
from repro.crypto.rng import DeterministicRng

KEY = b"k" * 32


class TestBlockCipher:
    def test_roundtrip(self):
        cipher = BlockCipher(KEY)
        block = bytes(range(BLOCK_LEN))
        assert cipher.decrypt_block(cipher.encrypt_block(block)) == block

    def test_block_length_is_16(self):
        assert BlockCipher(KEY).block_len == 16

    def test_key_too_short(self):
        with pytest.raises(KeyError_):
            BlockCipher(b"short")

    def test_wrong_block_length(self):
        cipher = BlockCipher(KEY)
        with pytest.raises(ParameterError):
            cipher.encrypt_block(b"short")
        with pytest.raises(ParameterError):
            cipher.decrypt_block(b"x" * 17)

    def test_different_keys_give_different_ciphertexts(self):
        block = b"\x01" * BLOCK_LEN
        assert BlockCipher(KEY).encrypt_block(block) != BlockCipher(b"q" * 32).encrypt_block(block)


class TestEcbMode:
    def test_roundtrip(self):
        ecb = EcbMode(BlockCipher(KEY))
        message = b"the quick brown fox jumps over the lazy dog"
        assert ecb.decrypt(ecb.encrypt(message)) == message

    def test_is_deterministic_and_leaks_block_equality(self):
        ecb = EcbMode(BlockCipher(KEY))
        message = b"A" * 32  # two identical blocks
        ciphertext = ecb.encrypt(message)
        assert ciphertext[:16] == ciphertext[16:32]
        assert ecb.encrypt(message) == ciphertext

    def test_malformed_ciphertext(self):
        ecb = EcbMode(BlockCipher(KEY))
        with pytest.raises(DecryptionError):
            ecb.decrypt(b"not-a-block-multiple")


class TestCbcMode:
    def test_roundtrip(self):
        cbc = CbcMode(BlockCipher(KEY), rng=DeterministicRng(1))
        message = b"confidential tuple payload"
        assert cbc.decrypt(cbc.encrypt(message)) == message

    def test_randomized(self):
        cbc = CbcMode(BlockCipher(KEY), rng=DeterministicRng(2))
        message = b"same message"
        assert cbc.encrypt(message) != cbc.encrypt(message)

    def test_identical_blocks_do_not_leak(self):
        cbc = CbcMode(BlockCipher(KEY), rng=DeterministicRng(3))
        ciphertext = cbc.encrypt(b"A" * 32)
        body = ciphertext[16:]
        assert body[:16] != body[16:32]

    def test_explicit_iv_must_have_block_length(self):
        cbc = CbcMode(BlockCipher(KEY))
        with pytest.raises(ParameterError):
            cbc.encrypt(b"m", iv=b"short")

    def test_truncated_ciphertext_rejected(self):
        cbc = CbcMode(BlockCipher(KEY))
        with pytest.raises(DecryptionError):
            cbc.decrypt(b"\x00" * 16)  # IV only, no body


class TestCtrMode:
    def test_roundtrip(self):
        ctr = CtrMode(BlockCipher(KEY), rng=DeterministicRng(4))
        message = b"arbitrary length payload without padding"
        assert ctr.decrypt(ctr.encrypt(message)) == message

    def test_preserves_length_plus_nonce(self):
        ctr = CtrMode(BlockCipher(KEY), rng=DeterministicRng(5))
        message = b"12345"
        assert len(ctr.encrypt(message)) == len(message) + CtrMode.NONCE_LEN

    def test_randomized(self):
        ctr = CtrMode(BlockCipher(KEY), rng=DeterministicRng(6))
        assert ctr.encrypt(b"msg") != ctr.encrypt(b"msg")

    def test_empty_message(self):
        ctr = CtrMode(BlockCipher(KEY), rng=DeterministicRng(7))
        assert ctr.decrypt(ctr.encrypt(b"")) == b""

    def test_bad_nonce_length(self):
        ctr = CtrMode(BlockCipher(KEY))
        with pytest.raises(ParameterError):
            ctr.encrypt(b"m", nonce=b"short")

    def test_ciphertext_shorter_than_nonce_rejected(self):
        ctr = CtrMode(BlockCipher(KEY))
        with pytest.raises(DecryptionError):
            ctr.decrypt(b"abc")


@given(message=st.binary(min_size=0, max_size=200))
@settings(max_examples=50, deadline=None)
def test_property_all_modes_roundtrip(message):
    cipher = BlockCipher(KEY)
    rng = DeterministicRng(99)
    assert EcbMode(cipher).decrypt(EcbMode(cipher).encrypt(message)) == message
    cbc = CbcMode(cipher, rng=rng)
    assert cbc.decrypt(cbc.encrypt(message)) == message
    ctr = CtrMode(cipher, rng=rng)
    assert ctr.decrypt(ctr.encrypt(message)) == message
