"""Tests for the pseudorandom generator, keystream helper and padding schemes."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.errors import PaddingError, ParameterError
from repro.crypto.padding import (
    PAD_BYTE,
    hash_pad,
    hash_unpad,
    pkcs7_pad,
    pkcs7_unpad,
    zero_pad,
)
from repro.crypto.prg import Prg, keystream, xor_bytes

KEY = b"k" * 32


class TestPrg:
    def test_block_size_is_respected(self):
        assert len(Prg(KEY, block_size=24).block_at(0)) == 24

    def test_random_access_matches_sequential(self):
        prg = Prg(KEY, block_size=16)
        sequential = [prg.next_block() for _ in range(5)]
        assert sequential == [prg.block_at(i) for i in range(5)]

    def test_reset_restarts_the_stream(self):
        prg = Prg(KEY)
        first = prg.next_block()
        prg.reset()
        assert prg.next_block() == first

    def test_distinct_labels_give_distinct_streams(self):
        assert Prg(KEY, label=b"a").block_at(0) != Prg(KEY, label=b"b").block_at(0)

    def test_generate_returns_requested_length(self):
        assert len(Prg(KEY).generate(100)) == 100

    def test_invalid_parameters(self):
        with pytest.raises(ParameterError):
            Prg(KEY, block_size=0)
        with pytest.raises(ParameterError):
            Prg(KEY).block_at(-1)
        with pytest.raises(ParameterError):
            Prg(KEY).generate(-1)


class TestKeystream:
    def test_length(self):
        assert len(keystream(KEY, 77)) == 77

    def test_nonce_separates_streams(self):
        assert keystream(KEY, 32, nonce=b"a") != keystream(KEY, 32, nonce=b"b")

    def test_deterministic(self):
        assert keystream(KEY, 64, nonce=b"n") == keystream(KEY, 64, nonce=b"n")

    def test_xor_bytes_roundtrip(self):
        data = b"hello world"
        mask = keystream(KEY, len(data))
        assert xor_bytes(xor_bytes(data, mask), mask) == data

    def test_xor_bytes_length_mismatch(self):
        with pytest.raises(ParameterError):
            xor_bytes(b"ab", b"abc")


class TestPkcs7:
    def test_roundtrip(self):
        for length in range(0, 40):
            data = bytes(range(length % 256))[:length]
            assert pkcs7_unpad(pkcs7_pad(data, 16), 16) == data

    def test_padded_length_is_multiple_of_block(self):
        assert len(pkcs7_pad(b"abc", 16)) % 16 == 0

    def test_full_block_added_when_aligned(self):
        assert len(pkcs7_pad(b"x" * 16, 16)) == 32

    def test_invalid_padding_detected(self):
        padded = bytearray(pkcs7_pad(b"abc", 16))
        padded[-1] = 0  # invalid pad length byte
        with pytest.raises(PaddingError):
            pkcs7_unpad(bytes(padded), 16)

    def test_inconsistent_padding_detected(self):
        padded = bytearray(pkcs7_pad(b"abc", 16))
        padded[-2] ^= 0xFF
        with pytest.raises(PaddingError):
            pkcs7_unpad(bytes(padded), 16)

    def test_wrong_length_rejected(self):
        with pytest.raises(PaddingError):
            pkcs7_unpad(b"123", 16)


class TestHashPadding:
    """The paper's '#' padding for fixed-width attribute values."""

    def test_pads_to_width_with_hash(self):
        assert hash_pad(b"HR", 10) == b"HR########"

    def test_roundtrip(self):
        assert hash_unpad(hash_pad(b"7500", 10)) == b"7500"

    def test_value_equal_to_width(self):
        assert hash_pad(b"Montgomery", 10) == b"Montgomery"

    def test_too_long_value_rejected(self):
        with pytest.raises(PaddingError):
            hash_pad(b"Montgomery", 5)

    def test_value_containing_pad_byte_rejected(self):
        with pytest.raises(PaddingError):
            hash_pad(b"a#b", 10)

    def test_interior_pad_byte_detected_on_unpad(self):
        with pytest.raises(PaddingError):
            hash_unpad(b"a#b#")

    def test_zero_pad(self):
        assert zero_pad(b"42", 6) == b"000042"
        with pytest.raises(PaddingError):
            zero_pad(b"1234567", 6)

    def test_pad_byte_constant_is_hash(self):
        assert PAD_BYTE == b"#"


@given(value=st.binary(min_size=0, max_size=20).filter(lambda v: b"#" not in v),
       extra=st.integers(min_value=0, max_value=20))
@settings(max_examples=80, deadline=None)
def test_property_hash_pad_roundtrip(value, extra):
    width = len(value) + extra
    if width == 0:
        width = 1
    assert hash_unpad(hash_pad(value, width)) == value


@given(data=st.binary(min_size=0, max_size=100), block=st.integers(min_value=1, max_value=64))
@settings(max_examples=80, deadline=None)
def test_property_pkcs7_roundtrip(data, block):
    assert pkcs7_unpad(pkcs7_pad(data, block), block) == data
