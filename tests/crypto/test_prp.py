"""Tests for the pseudorandom permutations (Feistel, unbalanced Feistel, integer)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.errors import ParameterError
from repro.crypto.prp import FeistelPrp, IntegerPrp, UnbalancedFeistelPrp

KEY = b"k" * 32


class TestFeistelPrp:
    def test_roundtrip(self):
        prp = FeistelPrp(KEY, 16)
        block = bytes(range(16))
        assert prp.invert(prp.permute(block)) == block

    def test_permutation_changes_input(self):
        prp = FeistelPrp(KEY, 16)
        assert prp.permute(b"\x00" * 16) != b"\x00" * 16

    def test_is_injective_on_sample(self):
        prp = FeistelPrp(KEY, 2)
        images = {prp.permute(bytes([a, b])) for a in range(32) for b in range(32)}
        assert len(images) == 32 * 32

    def test_tweak_separates_domains(self):
        prp = FeistelPrp(KEY, 16)
        block = bytes(16)
        assert prp.permute(block, tweak=b"a") != prp.permute(block, tweak=b"b")

    def test_tweak_roundtrip(self):
        prp = FeistelPrp(KEY, 16)
        block = bytes(range(16))
        assert prp.invert(prp.permute(block, tweak=b"t"), tweak=b"t") == block

    def test_rejects_odd_or_tiny_blocks(self):
        with pytest.raises(ParameterError):
            FeistelPrp(KEY, 15)
        with pytest.raises(ParameterError):
            FeistelPrp(KEY, 0)

    def test_rejects_too_few_rounds(self):
        with pytest.raises(ParameterError):
            FeistelPrp(KEY, 16, rounds=2)

    def test_rejects_wrong_block_length(self):
        prp = FeistelPrp(KEY, 16)
        with pytest.raises(ParameterError):
            prp.permute(b"short")
        with pytest.raises(ParameterError):
            prp.invert(b"short")


class TestUnbalancedFeistelPrp:
    @pytest.mark.parametrize("length", [2, 3, 5, 7, 10, 11, 17, 33])
    def test_roundtrip_any_length(self, length):
        prp = UnbalancedFeistelPrp(KEY, length)
        block = bytes(i % 256 for i in range(length))
        assert prp.invert(prp.permute(block)) == block

    def test_injective_on_small_domain(self):
        prp = UnbalancedFeistelPrp(KEY, 3)
        inputs = [bytes([a, b, 7]) for a in range(64) for b in range(64)]
        images = {prp.permute(i) for i in inputs}
        assert len(images) == len(inputs)

    def test_different_keys_differ(self):
        block = b"wordword"
        assert (
            UnbalancedFeistelPrp(KEY, 8).permute(block)
            != UnbalancedFeistelPrp(b"q" * 32, 8).permute(block)
        )

    def test_rejects_length_one(self):
        with pytest.raises(ParameterError):
            UnbalancedFeistelPrp(KEY, 1)

    def test_rejects_wrong_length_input(self):
        prp = UnbalancedFeistelPrp(KEY, 11)
        with pytest.raises(ParameterError):
            prp.permute(b"x" * 10)


class TestIntegerPrp:
    @pytest.mark.parametrize("domain", [1, 2, 3, 10, 16, 100, 1000])
    def test_is_a_bijection(self, domain):
        prp = IntegerPrp(KEY, domain)
        images = [prp.permute(i) for i in range(domain)]
        assert sorted(images) == list(range(domain))

    @pytest.mark.parametrize("domain", [1, 2, 17, 64, 257])
    def test_invert_recovers_input(self, domain):
        prp = IntegerPrp(KEY, domain)
        for value in range(domain):
            assert prp.invert(prp.permute(value)) == value

    def test_out_of_domain_rejected(self):
        prp = IntegerPrp(KEY, 10)
        with pytest.raises(ParameterError):
            prp.permute(10)
        with pytest.raises(ParameterError):
            prp.invert(-1)

    def test_invalid_domain_rejected(self):
        with pytest.raises(ParameterError):
            IntegerPrp(KEY, 0)

    def test_different_keys_give_different_permutations(self):
        domain = 64
        first = [IntegerPrp(KEY, domain).permute(i) for i in range(domain)]
        second = [IntegerPrp(b"q" * 32, domain).permute(i) for i in range(domain)]
        assert first != second


@given(length=st.integers(min_value=2, max_value=24), data=st.data())
@settings(max_examples=60, deadline=None)
def test_property_unbalanced_feistel_roundtrip(length, data):
    block = data.draw(st.binary(min_size=length, max_size=length))
    prp = UnbalancedFeistelPrp(KEY, length)
    assert prp.invert(prp.permute(block)) == block


@given(domain=st.integers(min_value=1, max_value=300), data=st.data())
@settings(max_examples=60, deadline=None)
def test_property_integer_prp_roundtrip(domain, data):
    value = data.draw(st.integers(min_value=0, max_value=domain - 1))
    prp = IntegerPrp(KEY, domain)
    assert prp.invert(prp.permute(value)) == value
