"""Tests for the pseudorandom function."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.errors import KeyError_, ParameterError
from repro.crypto.prf import MIN_KEY_LEN, Prf, prf_once

KEY = b"k" * 32
OTHER_KEY = b"q" * 32


class TestPrfConstruction:
    def test_rejects_short_keys(self):
        with pytest.raises(KeyError_):
            Prf(b"short")

    def test_rejects_non_bytes_keys(self):
        with pytest.raises(KeyError_):
            Prf("not-bytes" * 10)  # type: ignore[arg-type]

    def test_accepts_minimum_length_key(self):
        Prf(b"x" * MIN_KEY_LEN)


class TestPrfEvaluation:
    def test_deterministic(self):
        prf = Prf(KEY)
        assert prf.evaluate(b"message") == prf.evaluate(b"message")

    def test_different_inputs_differ(self):
        prf = Prf(KEY)
        assert prf.evaluate(b"a") != prf.evaluate(b"b")

    def test_different_keys_differ(self):
        assert Prf(KEY).evaluate(b"a") != Prf(OTHER_KEY).evaluate(b"a")

    def test_different_labels_differ(self):
        assert Prf(KEY, label=b"x").evaluate(b"a") != Prf(KEY, label=b"y").evaluate(b"a")

    def test_requested_length_is_honoured(self):
        prf = Prf(KEY)
        for length in (1, 16, 32, 33, 64, 100, 1000):
            assert len(prf.evaluate(b"m", length)) == length

    def test_outputs_of_different_lengths_are_independent(self):
        prf = Prf(KEY)
        assert prf.evaluate(b"m", 16) != prf.evaluate(b"m", 32)[:16]

    def test_zero_or_negative_length_rejected(self):
        prf = Prf(KEY)
        with pytest.raises(ParameterError):
            prf.evaluate(b"m", 0)
        with pytest.raises(ParameterError):
            prf.evaluate(b"m", -1)

    def test_non_bytes_input_rejected(self):
        with pytest.raises(ParameterError):
            Prf(KEY).evaluate("text")  # type: ignore[arg-type]

    def test_callable_shorthand(self):
        prf = Prf(KEY)
        assert prf(b"m") == prf.evaluate(b"m")

    def test_prf_once_matches_instance(self):
        assert prf_once(KEY, b"m", 48) == Prf(KEY).evaluate(b"m", 48)


class TestPrfIntegers:
    def test_within_modulus(self):
        prf = Prf(KEY)
        for modulus in (1, 2, 7, 100, 2**32):
            value = prf.evaluate_int(b"m", modulus)
            assert 0 <= value < modulus

    def test_deterministic(self):
        prf = Prf(KEY)
        assert prf.evaluate_int(b"m", 1000) == prf.evaluate_int(b"m", 1000)

    def test_invalid_modulus(self):
        with pytest.raises(ParameterError):
            Prf(KEY).evaluate_int(b"m", 0)

    def test_reasonably_uniform(self):
        prf = Prf(KEY)
        samples = [prf.evaluate_int(i.to_bytes(4, "big"), 2) for i in range(400)]
        ones = sum(samples)
        assert 130 < ones < 270  # extremely loose two-sided bound


class TestPrfDerivation:
    def test_derived_prfs_are_independent(self):
        prf = Prf(KEY)
        assert prf.derive("a").evaluate(b"m") != prf.derive("b").evaluate(b"m")

    def test_derivation_is_deterministic(self):
        assert Prf(KEY).derive("a").evaluate(b"m") == Prf(KEY).derive("a").evaluate(b"m")


@given(message=st.binary(min_size=0, max_size=200), out_len=st.integers(min_value=1, max_value=200))
@settings(max_examples=60, deadline=None)
def test_property_output_length_and_determinism(message, out_len):
    prf = Prf(KEY)
    first = prf.evaluate(message, out_len)
    second = prf.evaluate(message, out_len)
    assert len(first) == out_len
    assert first == second


@given(a=st.binary(min_size=0, max_size=64), b=st.binary(min_size=0, max_size=64))
@settings(max_examples=60, deadline=None)
def test_property_distinct_inputs_rarely_collide(a, b):
    prf = Prf(KEY)
    if a != b:
        assert prf.evaluate(a, 32) != prf.evaluate(b, 32)
