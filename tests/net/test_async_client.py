"""The pipelined asyncio client: multiplexing, reconnects, cancellation."""

from __future__ import annotations

import asyncio
import threading

import pytest

from repro.api import EncryptedDatabase
from repro.net import (
    AsyncRemoteServerProxy,
    ConnectionLostError,
    EventLoopThread,
    RemoteError,
    RemoteServerProxy,
    ThreadedTcpServer,
)
from repro.outsourcing import OutsourcedDatabaseServer

EMP_DECL = "Emp(name:string[14], dept:string[5], salary:int[6])"
ROWS = [("A", "HR", 1), ("B", "IT", 2), ("C", "HR", 3)]


@pytest.fixture
def provider():
    with ThreadedTcpServer() as server:
        yield server


class TestEventLoopThread:
    def test_run_and_stop(self):
        loop_thread = EventLoopThread().start()

        async def answer():
            return 41 + 1

        assert loop_thread.run(answer()) == 42
        loop_thread.stop()
        loop_thread.stop()  # idempotent

    def test_run_from_the_loop_thread_is_rejected(self):
        loop_thread = EventLoopThread().start()

        async def reenter():
            coroutine = asyncio.sleep(0)
            try:
                return loop_thread.run(coroutine)
            finally:
                coroutine.close()

        with pytest.raises(RuntimeError, match="loop thread"):
            loop_thread.run(reenter())
        loop_thread.stop()

    def test_context_manager(self):
        with EventLoopThread() as loop_thread:
            assert loop_thread.loop.is_running()
        with pytest.raises(RuntimeError):
            loop_thread.loop  # noqa: B018 - stopped loops are unreachable


class TestAsyncProxyDuckType:
    def test_same_sync_surface_as_the_blocking_proxy(self, provider):
        sync_api = {
            name
            for name in dir(RemoteServerProxy)
            if not name.startswith("_")
        }
        async_api = {
            name
            for name in dir(AsyncRemoteServerProxy)
            if not name.startswith("_")
        }
        # The async proxy offers everything the sync one does (the sync
        # surface is inherited from one shared base, so signatures match).
        missing = sync_api - async_api
        assert not missing, missing

    def test_session_over_async_url(self, provider, secret_key, rng):
        with EncryptedDatabase.connect(
            f"tcp://127.0.0.1:{provider.port}?async=1", secret_key, rng=rng
        ) as db:
            assert type(db.server).__name__ == "AsyncRemoteServerProxy"
            db.create_table(EMP_DECL, rows=ROWS)
            assert len(db.select("SELECT * FROM Emp WHERE dept = 'HR'").relation) == 2
            db.insert("Emp", {"name": "Zoe", "dept": "IT", "salary": 9})
            assert db.count("Emp") == 4
            assert db.delete("SELECT * FROM Emp WHERE dept = 'HR'") == 2
            db.drop_table("Emp")

    def test_sync_proxy_connect_rejects_the_async_option(self, provider):
        with pytest.raises(RemoteError, match="async"):
            RemoteServerProxy.connect(f"tcp://127.0.0.1:{provider.port}?async=1")

    def test_many_threads_share_one_pipelined_connection(self, provider):
        proxy = AsyncRemoteServerProxy("127.0.0.1", provider.port)
        try:
            errors = []

            def worker():
                try:
                    for _ in range(10):
                        assert proxy.ping()
                except Exception as exc:  # noqa: BLE001 - asserted below
                    errors.append(exc)

            threads = [threading.Thread(target=worker) for _ in range(8)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join(timeout=30)
            assert not errors, errors
            # One proxy, one socket: the provider saw a single connection.
            assert provider.server.stats.connections_total == 1
        finally:
            proxy.close()

    def test_many_requests_in_flight_on_one_connection(self, provider):
        proxy = AsyncRemoteServerProxy("127.0.0.1", provider.port)
        try:
            async def burst():
                return await asyncio.gather(
                    *(proxy.call_control_async("ping") for _ in range(32))
                )

            responses = proxy.loop_thread.run(burst())
            assert len(responses) == 32
            assert all(r["ok"] for r in responses)
        finally:
            proxy.close()


class TestAsyncReconnect:
    def test_client_survives_a_provider_restart(self, secret_key):
        """At-most-once over the pipelined transport: idempotent calls are
        transparently retried on a fresh connection after a restart."""
        database = OutsourcedDatabaseServer()
        first = ThreadedTcpServer(database).start()
        port = first.port
        db = EncryptedDatabase.connect(f"tcp://127.0.0.1:{port}?async=1", secret_key)
        db.create_table(EMP_DECL, rows=ROWS)
        assert db.count("Emp") == 3
        first.stop()

        second = ThreadedTcpServer(database, port=port).start()
        try:
            assert db.count("Emp") == 3  # transparent retry on a fresh connection
            assert len(db.select("SELECT * FROM Emp WHERE dept = 'HR'").relation) == 2
            db.insert("Emp", {"name": "D", "dept": "IT", "salary": 4})
            assert db.count("Emp") == 4
            db.close()
        finally:
            second.stop()

    def test_non_idempotent_ops_are_not_retried_once_delivered(self, provider):
        proxy = AsyncRemoteServerProxy("127.0.0.1", provider.port)
        try:
            calls = []

            class ExplodingConnection:
                healthy = True

                async def request(self, payload, channel):
                    calls.append(payload)
                    raise ConnectionLostError("late failure", request_delivered=True)

            exploding = ExplodingConnection()

            async def force(idempotent):
                original = proxy._connection

                async def fake_connection(*, replacing=None):
                    if replacing is not None:
                        return await original(replacing=replacing)
                    return exploding

                proxy._connection = fake_connection
                try:
                    await proxy.call_envelope_async(b"x", idempotent=idempotent)
                finally:
                    proxy._connection = original

            # delivered + idempotent -> retried once on a *real* fresh
            # connection (the retry raises RemoteError because b"x" is
            # garbage, which proves the second attempt reached the provider).
            with pytest.raises(RemoteError):
                proxy.loop_thread.run(force(True))
            assert len(calls) == 1
            calls.clear()
            # delivered + non-idempotent -> no retry, the failure surfaces
            with pytest.raises(ConnectionLostError):
                proxy.loop_thread.run(force(False))
            assert len(calls) == 1
        finally:
            proxy.close()

    def test_in_flight_requests_fail_as_delivered_when_the_peer_dies(self):
        """When a multiplexed connection dies, every in-flight request
        reports request_delivered=True -- the provider may have seen any
        of them, so non-idempotent callers must not blindly retry."""
        import json
        import socket as socket_module

        from repro.net.framing import CHANNEL_CONTROL, FrameDecoder, encode_frame

        listener = socket_module.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        port = listener.getsockname()[1]

        def rogue_provider():
            conn, _ = listener.accept()
            decoder = FrameDecoder()
            frames = []
            while not frames:  # the hello
                frames += decoder.feed(conn.recv(65536))
            response = {"ok": True, "version": 2, "versions": [1, 2], "server": "rogue"}
            conn.sendall(
                encode_frame(
                    json.dumps(response).encode(),
                    channel=CHANNEL_CONTROL,
                    correlation=frames[0].correlation,
                )
            )
            while len(frames) < 2:  # the first real request...
                frames += decoder.feed(conn.recv(65536))
            conn.close()  # ...answered by hanging up

        server_thread = threading.Thread(target=rogue_provider, daemon=True)
        server_thread.start()
        proxy = AsyncRemoteServerProxy("127.0.0.1", port, timeout=10.0)
        try:
            # drop-relation is the non-idempotent control op: delivered but
            # unanswered, it must surface instead of being replayed.
            with pytest.raises(ConnectionLostError) as excinfo:
                proxy.drop_relation("X")
            assert excinfo.value.request_delivered
        finally:
            proxy.close()
            listener.close()
            server_thread.join(timeout=10)


class TestCancellationOrphans:
    def test_cancelled_request_orphans_its_response(self):
        """Cancelling one in-flight request leaves the connection healthy;
        the provider's late answer is dropped, not misdelivered."""
        from gated_provider import GatedServer, store_empty

        from repro.outsourcing.protocol import MessageKind, MessageV2

        database = GatedServer()
        store_empty(database, EMP_DECL)
        store_empty(database, "Fast(name:string[8], v:int[4])")
        gate = database.gate("Emp")
        with ThreadedTcpServer(database) as server:
            proxy = AsyncRemoteServerProxy("127.0.0.1", server.port)
            try:
                slow_envelope = MessageV2(
                    kind=MessageKind.LIST_TUPLE_IDS, relation_name="Emp"
                ).to_bytes()

                async def cancel_midflight():
                    task = asyncio.ensure_future(
                        proxy.call_envelope_async(slow_envelope)
                    )
                    # The request has provably hit the provider once its
                    # dispatch enters the gate; only then cancel.
                    while not database.entered["Emp"].is_set():
                        await asyncio.sleep(0.005)
                    task.cancel()
                    with pytest.raises(asyncio.CancelledError):
                        await task

                proxy.loop_thread.run(cancel_midflight())
                assert database.entered["Emp"].wait(timeout=10)
                gate.set()
                # The connection survives and serves later calls; the slow
                # relation's late answer became an orphan frame.
                assert proxy.list_tuple_ids("Fast") == ()
                assert proxy.list_tuple_ids("Emp") == ()
                assert proxy.orphan_frames >= 1
            finally:
                proxy.close()
