"""The server's per-relation dispatch and pipelined connections.

Concurrency here is driven by *events*, not sleeps: a "slow" relation is a
provider whose ``handle_message`` blocks on a :class:`threading.Event` for
that relation, so every ordering assertion is deterministic.
"""

from __future__ import annotations

import json
import socket
import threading
import time

import pytest
from gated_provider import GatedServer, store_empty

from repro.net import (
    CHANNEL_CONTROL,
    KeyedSerialDispatcher,
    ThreadedTcpServer,
    recv_frame,
    send_frame,
)
from repro.outsourcing import OutsourcedDatabaseServer
from repro.outsourcing.protocol import MessageKind, MessageV2, parse_message

EMP_DECL = "Emp(name:string[14], dept:string[5], salary:int[6])"


class TestKeyedSerialDispatcher:
    def test_same_key_is_fifo(self):
        dispatcher = KeyedSerialDispatcher(max_workers=4)
        order = []
        gate = threading.Event()

        def job(index):
            if index == 0:
                gate.wait(timeout=10)
            order.append(index)
            return index

        futures = [dispatcher.submit("k", job, i) for i in range(5)]
        gate.set()
        assert [f.result(timeout=10) for f in futures] == list(range(5))
        assert order == list(range(5))
        dispatcher.shutdown()

    def test_different_keys_run_concurrently(self):
        dispatcher = KeyedSerialDispatcher(max_workers=4)
        gate = threading.Event()
        entered = threading.Event()

        def slow():
            entered.set()
            gate.wait(timeout=10)
            return "slow"

        slow_future = dispatcher.submit("slow-key", slow)
        assert entered.wait(timeout=10)
        # With the slow key's worker parked, other keys still execute.
        fast_future = dispatcher.submit("fast-key", lambda: "fast")
        assert fast_future.result(timeout=10) == "fast"
        assert not slow_future.done()
        gate.set()
        assert slow_future.result(timeout=10) == "slow"
        assert dispatcher.peak_concurrency >= 2
        assert dispatcher.total_dispatched == 2
        dispatcher.shutdown()

    def test_exceptions_travel_through_the_future(self):
        dispatcher = KeyedSerialDispatcher(max_workers=1)

        def boom():
            raise RuntimeError("kaboom")

        failing = dispatcher.submit("k", boom)
        healthy = dispatcher.submit("k", lambda: "after")
        with pytest.raises(RuntimeError, match="kaboom"):
            failing.result(timeout=10)
        # The key keeps draining after a failed job.
        assert healthy.result(timeout=10) == "after"
        dispatcher.shutdown()

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            KeyedSerialDispatcher(max_workers=0)


def hello(sock) -> dict:
    send_frame(sock, json.dumps({"op": "hello", "versions": [1, 2]}).encode(),
               channel=CHANNEL_CONTROL, correlation=1)
    return json.loads(recv_frame(sock).payload)


def open_client(port: int) -> socket.socket:
    sock = socket.create_connection(("127.0.0.1", port), timeout=10.0)
    sock.settimeout(10.0)
    assert hello(sock)["ok"]
    return sock


class TestPipelinedConnections:
    def test_responses_echo_request_correlations(self):
        database = OutsourcedDatabaseServer()
        store_empty(database, EMP_DECL)
        with ThreadedTcpServer(database) as server:
            sock = open_client(server.port)
            try:
                envelope = MessageV2(
                    kind=MessageKind.LIST_TUPLE_IDS, relation_name="Emp"
                ).to_bytes()
                for correlation in (7, 99, 42):
                    send_frame(sock, envelope, correlation=correlation)
                seen = {recv_frame(sock).correlation for _ in range(3)}
                assert seen == {7, 99, 42}
            finally:
                sock.close()

    def test_interleaved_responses_on_one_connection(self):
        """A slow relation's response arrives *after* a fast one pipelined
        behind it, paired by correlation id (out-of-order completion)."""
        database = GatedServer()
        store_empty(database, EMP_DECL)
        store_empty(database, "Fast(name:string[8], v:int[4])")
        gate = database.gate("Emp")
        with ThreadedTcpServer(database) as server:
            sock = open_client(server.port)
            try:
                slow = MessageV2(
                    kind=MessageKind.LIST_TUPLE_IDS, relation_name="Emp"
                ).to_bytes()
                fast = MessageV2(
                    kind=MessageKind.LIST_TUPLE_IDS, relation_name="Fast"
                ).to_bytes()
                send_frame(sock, slow, correlation=1)
                assert database.entered["Emp"].wait(timeout=10)
                send_frame(sock, fast, correlation=2)
                first = recv_frame(sock)
                assert first.correlation == 2  # the fast relation overtook
                gate.set()
                second = recv_frame(sock)
                assert second.correlation == 1
                for frame in (first, second):
                    assert parse_message(frame.payload).kind is MessageKind.TUPLE_IDS
            finally:
                sock.close()

    def test_slow_relation_does_not_block_fast_relation_across_connections(self):
        database = GatedServer()
        store_empty(database, EMP_DECL)
        store_empty(database, "Fast(name:string[8], v:int[4])")
        gate = database.gate("Emp")
        with ThreadedTcpServer(database) as server:
            slow_sock = open_client(server.port)
            fast_sock = open_client(server.port)
            try:
                send_frame(
                    slow_sock,
                    MessageV2(kind=MessageKind.LIST_TUPLE_IDS,
                              relation_name="Emp").to_bytes(),
                    correlation=1,
                )
                assert database.entered["Emp"].wait(timeout=10)
                # While Emp is parked on its gate, Fast answers immediately.
                started = time.monotonic()
                send_frame(
                    fast_sock,
                    MessageV2(kind=MessageKind.LIST_TUPLE_IDS,
                              relation_name="Fast").to_bytes(),
                    correlation=1,
                )
                frame = recv_frame(fast_sock)
                elapsed = time.monotonic() - started
                assert parse_message(frame.payload).kind is MessageKind.TUPLE_IDS
                assert elapsed < 5.0  # nowhere near the gate's 30s ceiling
                gate.set()
                assert recv_frame(slow_sock).correlation == 1
            finally:
                slow_sock.close()
                fast_sock.close()

    def test_same_relation_requests_stay_fifo_under_pipelining(self):
        """Pipelined inserts into one relation apply in send order."""
        from repro.api import EncryptedDatabase

        with ThreadedTcpServer() as server:
            db = EncryptedDatabase.connect(
                f"tcp://127.0.0.1:{server.port}?async=1", scheme="plaintext"
            )
            try:
                db.create_table("Log(seq:int[6])")
                threads = [
                    threading.Thread(target=db.insert, args=("Log", {"seq": i}))
                    for i in range(10)
                ]
                for thread in threads:
                    thread.start()
                for thread in threads:
                    thread.join(timeout=30)
                assert db.count("Log") == 10
                db.drop_table("Log")
            finally:
                db.close()

    def test_transport_fault_reaches_the_caller(self):
        """A frame the server's decoder rejects outright (no correlation
        id exists yet) is broadcast on correlation 0; the client folds the
        diagnostic into its connection error instead of dropping it."""
        from repro.api import EncryptedDatabase
        from repro.net import AsyncRemoteServerProxy, ConnectionLostError

        with ThreadedTcpServer(max_frame_size=4096) as server:
            db = EncryptedDatabase.connect(
                f"tcp://127.0.0.1:{server.port}", scheme="plaintext"
            )
            try:
                with pytest.raises(Exception) as excinfo:
                    db.create_table(
                        "Blob(name:string[64], v:int[6])",
                        rows=[("x" * 50 + str(i), i) for i in range(400)],
                    )
                assert "exceeds the 4096-byte limit" in str(excinfo.value)
            finally:
                db.close()
            # The pipelined client surfaces the same diagnostic.
            proxy = AsyncRemoteServerProxy("127.0.0.1", server.port)
            try:
                with pytest.raises(ConnectionLostError, match="exceeds"):
                    proxy._transport_envelope(b"\x00" * 8192, idempotent=False)
            finally:
                proxy.close()

    def test_dispatch_stats_report_parallelism(self):
        database = GatedServer()
        store_empty(database, EMP_DECL)
        store_empty(database, "Fast(name:string[8], v:int[4])")
        gate = database.gate("Emp")
        with ThreadedTcpServer(database, dispatch_workers=3) as server:
            sock = open_client(server.port)
            try:
                send_frame(
                    sock,
                    MessageV2(kind=MessageKind.LIST_TUPLE_IDS,
                              relation_name="Emp").to_bytes(),
                    correlation=1,
                )
                assert database.entered["Emp"].wait(timeout=10)
                send_frame(
                    sock,
                    MessageV2(kind=MessageKind.LIST_TUPLE_IDS,
                              relation_name="Fast").to_bytes(),
                    correlation=2,
                )
                assert recv_frame(sock).correlation == 2
                gate.set()
                assert recv_frame(sock).correlation == 1
            finally:
                sock.close()
            stats = server.server.stats
            assert stats.dispatch_workers == 3
            assert stats.peak_concurrent_dispatch >= 2
            assert stats.requests_dispatched >= 2
            assert "dispatch 3 worker(s)" in stats.throughput_summary()
