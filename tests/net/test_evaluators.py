"""Evaluator description round trips (the remote deployment codec)."""

from __future__ import annotations

import json

import pytest

from repro.core.dph import (
    EncryptedQuery,
    EncryptedRelation,
    EvaluationResult,
    ServerEvaluator,
)
from repro.net.evaluators import (
    EvaluatorDescriptionError,
    build_evaluator,
    describe_evaluator,
)
from repro.relational.query import Selection
from repro.schemes.registry import available_schemes, create


class TestRoundTrip:
    @pytest.mark.parametrize("scheme_name", available_schemes())
    def test_every_registered_scheme_describes_and_rebuilds(
        self, scheme_name, employee_schema, secret_key, rng
    ):
        scheme = create(scheme_name, employee_schema, secret_key, rng=rng)
        evaluator = scheme.server_evaluator()
        description = describe_evaluator(evaluator)
        # must survive a JSON wire trip
        rebuilt = build_evaluator(json.loads(json.dumps(description)))
        assert rebuilt.scheme_name == evaluator.scheme_name

    def test_rebuilt_evaluator_answers_queries(
        self, employee_schema, secret_key, rng, employee_relation, swp_dph
    ):
        encrypted = swp_dph.encrypt_relation(employee_relation)
        query = swp_dph.encrypt_query(Selection.equals("dept", "HR"))
        original = swp_dph.server_evaluator()
        rebuilt = build_evaluator(describe_evaluator(original))
        assert len(rebuilt.evaluate(query, encrypted).matching) == len(
            original.evaluate(query, encrypted).matching
        )

    def test_variable_width_round_trip(self, employee_schema, secret_key, rng):
        from repro.core.variable_length import VariableWidthSelectDph

        scheme = VariableWidthSelectDph(employee_schema, secret_key, rng=rng)
        description = describe_evaluator(scheme.server_evaluator())
        assert description["type"] == "variable-width"
        rebuilt = build_evaluator(json.loads(json.dumps(description)))
        assert rebuilt.scheme_name == scheme.server_evaluator().scheme_name


class TestRejection:
    def test_unknown_type_rejected(self):
        with pytest.raises(EvaluatorDescriptionError, match="not registered"):
            build_evaluator({"type": "pickled-code", "payload": "gASV..."})

    def test_non_object_rejected(self):
        with pytest.raises(EvaluatorDescriptionError):
            build_evaluator(["searchable"])

    def test_missing_fields_rejected(self):
        with pytest.raises(EvaluatorDescriptionError, match="malformed"):
            build_evaluator({"type": "searchable", "backend": "dph-swp"})

    def test_bad_backend_rejected(self):
        with pytest.raises(EvaluatorDescriptionError, match="malformed"):
            build_evaluator(
                {
                    "type": "searchable",
                    "backend": "no-such-backend",
                    "word_length": 15,
                    "check_length": 6,
                    "entry_length": 8,
                }
            )

    def test_undescribable_evaluator_rejected(self):
        class OpaqueEvaluator(ServerEvaluator):
            @property
            def scheme_name(self) -> str:
                return "opaque"

            def evaluate(self, encrypted_query, encrypted_relation):
                return EvaluationResult(
                    matching=EncryptedRelation(
                        schema=encrypted_relation.schema, encrypted_tuples=()
                    )
                )

        with pytest.raises(EvaluatorDescriptionError, match="does not describe"):
            describe_evaluator(OpaqueEvaluator())
