"""Unit tests of the sans-IO client protocol core."""

from __future__ import annotations

import pytest

from repro.net.framing import CHANNEL_CONTROL, CHANNEL_ENVELOPE, FrameDecoder, encode_frame
from repro.net.wire import (
    ClientChannel,
    WireProtocolError,
    control_error,
    decode_control_response,
    decode_hello,
    encode_hello,
)


def response_bytes(correlation: int, payload: bytes = b"pong") -> bytes:
    return encode_frame(payload, channel=CHANNEL_ENVELOPE, correlation=correlation)


class TestClientChannel:
    def test_requests_get_distinct_correlations(self):
        channel = ClientChannel()
        first, _ = channel.send(b"a", CHANNEL_ENVELOPE)
        second, _ = channel.send(b"b", CHANNEL_ENVELOPE)
        assert first != second
        assert channel.pending_count == 2

    def test_response_pairs_to_its_context(self):
        channel = ClientChannel()
        one, _ = channel.send(b"a", CHANNEL_ENVELOPE, context="first")
        two, _ = channel.send(b"b", CHANNEL_ENVELOPE, context="second")
        # Answer out of order: the second request first.
        matched = channel.receive(response_bytes(two, b"B") + response_bytes(one, b"A"))
        assert [(ctx, frame.payload) for ctx, frame in matched] == [
            ("second", b"B"),
            ("first", b"A"),
        ]
        assert channel.pending_count == 0

    def test_wire_bytes_carry_the_correlation(self):
        channel = ClientChannel()
        correlation, wire_bytes = channel.send(b"payload", CHANNEL_CONTROL)
        frames = FrameDecoder().feed(wire_bytes)
        assert frames[0].correlation == correlation
        assert frames[0].channel == CHANNEL_CONTROL

    def test_cancelled_requests_orphan_their_late_response(self):
        channel = ClientChannel()
        correlation, _ = channel.send(b"slow", CHANNEL_ENVELOPE, context="gone")
        assert channel.cancel(correlation) == "gone"
        assert channel.pending_count == 0
        matched = channel.receive(response_bytes(correlation))
        assert matched == []
        assert channel.orphan_frames == 1

    def test_unsolicited_response_is_an_orphan(self):
        channel = ClientChannel()
        assert channel.receive(response_bytes(1234)) == []
        assert channel.orphan_frames == 1

    def test_fail_all_pops_every_context(self):
        channel = ClientChannel()
        channel.send(b"a", CHANNEL_ENVELOPE, context="x")
        channel.send(b"b", CHANNEL_ENVELOPE, context="y")
        assert channel.fail_all() == ["x", "y"]
        assert channel.pending_count == 0

    def test_partial_frames_buffer_across_receives(self):
        channel = ClientChannel()
        correlation, _ = channel.send(b"req", CHANNEL_ENVELOPE, context="ctx")
        raw = response_bytes(correlation, b"answer")
        assert channel.receive(raw[:7]) == []
        matched = channel.receive(raw[7:])
        assert matched[0][0] == "ctx"
        assert matched[0][1].payload == b"answer"

    def test_correlations_skip_in_flight_ids_when_wrapping(self):
        channel = ClientChannel()
        channel._next_correlation = 2**32 - 1
        high, _ = channel.send(b"a", CHANNEL_ENVELOPE)
        assert high == 2**32 - 1
        wrapped, _ = channel.send(b"b", CHANNEL_ENVELOPE)
        assert wrapped == 1


class TestHelloCodecs:
    def test_hello_round_trip(self):
        payload = encode_hello([1, 2])
        request = decode_control_response(payload)
        assert request == {"op": "hello", "versions": [1, 2]}

    def test_decode_hello_extracts_the_session_parameters(self):
        hello = decode_hello(
            {"ok": True, "version": 2, "versions": [1, 2], "server": "x",
             "max_frame_size": 512},
            fallback_max_frame_size=1024,
        )
        assert hello.version == 2
        assert hello.versions == (1, 2)
        assert hello.software == "x"
        assert hello.max_frame_size == 512

    def test_decode_hello_defaults_and_errors(self):
        hello = decode_hello({"ok": True, "version": 1}, fallback_max_frame_size=99)
        assert hello.max_frame_size == 99
        with pytest.raises(WireProtocolError):
            decode_hello({"ok": True}, fallback_max_frame_size=99)

    def test_malformed_control_payloads_rejected(self):
        with pytest.raises(WireProtocolError):
            decode_control_response(b"{not json")
        with pytest.raises(WireProtocolError):
            decode_control_response(b"[1, 2]")
        assert control_error({"error": "boom"}) == "boom"
        assert "unspecified" in control_error({})
