"""Remote-specific end-to-end scenarios beyond the shared CRUD suite.

(The full CRUD suite itself runs over tcp:// via the ``transport``
parametrization in ``tests/api/test_encrypted_database.py``.)
"""

from __future__ import annotations

import pytest

from repro.api import DatabaseError, EncryptedDatabase
from repro.net import RemoteServerProxy, ThreadedTcpServer
from repro.outsourcing import (
    FileStorageBackend,
    OutsourcedDatabaseServer,
    OutsourcingClient,
    ServerAuditLog,
)

EMP_DECL = "Emp(name:string[14], dept:string[5], salary:int[6])"
ROWS = [("Montgomery", "HR", 7500), ("Smith", "IT", 5200), ("Jones", "HR", 7500)]


class TestRemoteSessions:
    def test_connect_url_and_context_manager(self, secret_key):
        with ThreadedTcpServer() as server:
            with EncryptedDatabase.connect(
                f"tcp://127.0.0.1:{server.port}", secret_key
            ) as db:
                db.create_table(EMP_DECL, rows=ROWS)
                assert db.count("Emp") == 3

    def test_connect_rejects_bad_urls(self, secret_key):
        with pytest.raises(DatabaseError):
            EncryptedDatabase.connect("udp://127.0.0.1:1", secret_key)
        with pytest.raises(DatabaseError):
            EncryptedDatabase.connect(
                OutsourcedDatabaseServer(), secret_key, pool_size=9
            )

    def test_two_sessions_share_one_remote_provider(self, secret_key, rng):
        with ThreadedTcpServer() as server:
            url = f"tcp://127.0.0.1:{server.port}"
            writer = EncryptedDatabase.connect(url, secret_key, rng=rng)
            writer.create_table(EMP_DECL, rows=ROWS)

            # an independent session (own pool, same key) attaches and reads
            reader = EncryptedDatabase.connect(url, secret_key)
            reader.attach_table(EMP_DECL)
            outcome = reader.select("SELECT * FROM Emp WHERE dept = 'HR'")
            assert sorted(t["name"] for t in outcome.relation) == ["Jones", "Montgomery"]

            # a write through one session is visible to the other
            writer.insert("Emp", {"name": "New", "dept": "HR", "salary": 1})
            assert reader.count("Emp") == 4
            writer.close()
            reader.close()

    def test_file_backed_provider_survives_full_restart(self, tmp_path, secret_key):
        """create over tcp -> kill provider process state -> reopen from disk."""
        directory = tmp_path / "relations"
        with ThreadedTcpServer(
            OutsourcedDatabaseServer(storage=FileStorageBackend(directory))
        ) as server:
            db = EncryptedDatabase.connect(f"tcp://127.0.0.1:{server.port}", secret_key)
            db.create_table(EMP_DECL, rows=ROWS)
            db.delete("SELECT * FROM Emp WHERE dept = 'IT'")
            db.close()

        # a brand-new provider over the same directory: only the files remain
        with ThreadedTcpServer(
            OutsourcedDatabaseServer(storage=FileStorageBackend(directory))
        ) as server:
            db = EncryptedDatabase.connect(f"tcp://127.0.0.1:{server.port}", secret_key)
            handle = db.attach_table(EMP_DECL)  # re-deploys the evaluator remotely
            assert handle.name == "Emp"
            assert db.count("Emp") == 2
            outcome = db.select("SELECT * FROM Emp WHERE dept = 'HR'")
            assert len(outcome.relation) == 2
            db.close()

    def test_wrong_key_cannot_read_remote_ciphertext(self, secret_key, rng):
        from repro.crypto.keys import SecretKey

        with ThreadedTcpServer() as server:
            url = f"tcp://127.0.0.1:{server.port}"
            db = EncryptedDatabase.connect(url, secret_key, rng=rng)
            db.create_table(EMP_DECL, rows=ROWS)

            intruder = EncryptedDatabase.connect(url, SecretKey.generate())
            intruder.attach_table(EMP_DECL)
            with pytest.raises(Exception):
                intruder.retrieve_all("Emp")
            intruder.close()
            db.close()

    def test_batch_queries_over_the_wire(self, secret_key):
        with ThreadedTcpServer() as server:
            db = EncryptedDatabase.connect(f"tcp://127.0.0.1:{server.port}", secret_key)
            db.create_table(EMP_DECL, rows=ROWS)
            outcomes = db.select_many(
                [
                    "SELECT * FROM Emp WHERE dept = 'HR'",
                    "SELECT * FROM Emp WHERE dept = 'IT'",
                ],
                table="Emp",
            )
            assert [len(o.relation) for o in outcomes] == [2, 1]
            db.close()


class TestLegacyClientRemote:
    def test_outsourcing_client_drives_a_remote_provider(
        self, swp_dph, employee_relation
    ):
        """The PR-0-era client works unchanged against a tcp:// proxy."""
        from repro.relational import Selection

        with ThreadedTcpServer() as server:
            proxy = RemoteServerProxy("127.0.0.1", server.port)
            client = OutsourcingClient(swp_dph, proxy, relation_name="Legacy")
            shipped = client.outsource(employee_relation)
            assert shipped > 0
            outcome = client.select(Selection.equals("dept", "HR"))
            assert len(outcome.relation) == 2
            client.insert({"name": "Zoe", "dept": "HR", "salary": 1})
            assert len(client.select(Selection.equals("dept", "HR")).relation) == 3
            assert len(client.retrieve_all()) == len(employee_relation) + 1
            proxy.close()


class TestRemoteAuditCap:
    def test_capped_audit_log_keeps_serving(self, secret_key):
        database = OutsourcedDatabaseServer(audit_log=ServerAuditLog(max_events=5))
        with ThreadedTcpServer(database) as server:
            db = EncryptedDatabase.connect(f"tcp://127.0.0.1:{server.port}", secret_key)
            db.create_table(EMP_DECL, rows=ROWS)
            for _ in range(10):
                db.select("SELECT * FROM Emp WHERE dept = 'HR'")
            assert len(database.audit_log) == 5
            assert database.audit_log.dropped_events > 0
            db.close()
