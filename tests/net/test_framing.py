"""Unit tests of the length-prefixed framing codec."""

from __future__ import annotations

import socket

import pytest

from repro.net.framing import (
    CHANNEL_CONTROL,
    CHANNEL_ENVELOPE,
    FRAME_HEADER_SIZE,
    Frame,
    FrameDecoder,
    FramingError,
    LENGTH_PREFIX_SIZE,
    MAX_CORRELATION_ID,
    OversizedFrameError,
    TruncatedFrameError,
    encode_frame,
    recv_frame,
    send_frame,
)


class TestEncode:
    def test_layout(self):
        raw = encode_frame(b"abc", channel=CHANNEL_ENVELOPE, correlation=7)
        assert raw == (
            (FRAME_HEADER_SIZE + 3).to_bytes(LENGTH_PREFIX_SIZE, "big")
            + b"\x00"
            + (7).to_bytes(4, "big")
            + b"abc"
        )

    def test_correlation_round_trips(self):
        raw = encode_frame(b"x", correlation=MAX_CORRELATION_ID)
        assert FrameDecoder().feed(raw) == [
            Frame(CHANNEL_ENVELOPE, b"x", MAX_CORRELATION_ID)
        ]

    def test_correlation_must_fit_32_bits(self):
        for bad in (-1, MAX_CORRELATION_ID + 1):
            with pytest.raises(FramingError, match="32 bits"):
                encode_frame(b"x", correlation=bad)

    def test_empty_payload_is_legal(self):
        raw = encode_frame(b"", channel=CHANNEL_CONTROL)
        assert FrameDecoder().feed(raw) == [Frame(CHANNEL_CONTROL, b"")]

    def test_oversized_rejected_at_encode_time(self):
        with pytest.raises(OversizedFrameError):
            encode_frame(b"x" * 32, max_frame_size=16)

    def test_unknown_channel_rejected(self):
        with pytest.raises(FramingError):
            encode_frame(b"x", channel=0x7F)


class TestDecoder:
    def test_round_trip(self):
        decoder = FrameDecoder()
        frames = decoder.feed(encode_frame(b"hello", channel=CHANNEL_CONTROL))
        assert frames == [Frame(CHANNEL_CONTROL, b"hello")]
        assert decoder.pending_bytes == 0

    def test_byte_by_byte_feeding(self):
        raw = encode_frame(b"payload")
        decoder = FrameDecoder()
        collected = []
        for index in range(len(raw)):
            collected += decoder.feed(raw[index: index + 1])
        assert collected == [Frame(CHANNEL_ENVELOPE, b"payload")]

    def test_many_frames_in_one_chunk(self):
        raw = b"".join(encode_frame(bytes([i])) for i in range(10))
        frames = FrameDecoder().feed(raw)
        assert [f.payload for f in frames] == [bytes([i]) for i in range(10)]

    def test_frames_split_across_chunks(self):
        raw = encode_frame(b"a" * 100) + encode_frame(b"b" * 100)
        decoder = FrameDecoder()
        frames = decoder.feed(raw[:150])
        frames += decoder.feed(raw[150:])
        assert [f.payload for f in frames] == [b"a" * 100, b"b" * 100]

    def test_oversized_header_rejected_before_body_arrives(self):
        huge = (2**31).to_bytes(LENGTH_PREFIX_SIZE, "big")
        with pytest.raises(OversizedFrameError):
            FrameDecoder(max_frame_size=1024).feed(huge)

    def test_headerless_frame_rejected(self):
        for short in range(FRAME_HEADER_SIZE):
            with pytest.raises(FramingError, match="header"):
                FrameDecoder().feed((short).to_bytes(LENGTH_PREFIX_SIZE, "big"))

    def test_unknown_channel_rejected(self):
        raw = (FRAME_HEADER_SIZE + 1).to_bytes(LENGTH_PREFIX_SIZE, "big") + b"\x7f\x00\x00\x00\x00x"
        with pytest.raises(FramingError, match="channel"):
            FrameDecoder().feed(raw)

    def test_finish_mid_frame_raises(self):
        decoder = FrameDecoder()
        decoder.feed(encode_frame(b"abcdef")[:-2])
        with pytest.raises(TruncatedFrameError):
            decoder.finish()

    def test_finish_between_frames_is_clean(self):
        decoder = FrameDecoder()
        decoder.feed(encode_frame(b"abc"))
        decoder.finish()


class TestBlockingHelpers:
    @pytest.fixture
    def pair(self):
        left, right = socket.socketpair()
        yield left, right
        left.close()
        right.close()

    def test_send_then_recv(self, pair):
        left, right = pair
        send_frame(left, b"ping", channel=CHANNEL_CONTROL)
        frame = recv_frame(right)
        assert frame == Frame(CHANNEL_CONTROL, b"ping")

    def test_clean_eof_between_frames_returns_none(self, pair):
        left, right = pair
        left.close()
        assert recv_frame(right) is None

    def test_eof_mid_frame_raises(self, pair):
        left, right = pair
        left.sendall(encode_frame(b"abcdef")[:-3])
        left.close()
        with pytest.raises(TruncatedFrameError):
            recv_frame(right)

    def test_oversized_rejected(self, pair):
        left, right = pair
        left.sendall((2**24).to_bytes(LENGTH_PREFIX_SIZE, "big"))
        with pytest.raises(OversizedFrameError):
            recv_frame(right, max_frame_size=1024)
