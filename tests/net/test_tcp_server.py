"""Edge cases of the TCP serving layer: negotiation, hostile bytes, lifecycle."""

from __future__ import annotations

import json
import socket
import threading

import pytest

from repro.api import EncryptedDatabase
from repro.net import (
    CHANNEL_CONTROL,
    CHANNEL_ENVELOPE,
    RemoteError,
    RemoteServerProxy,
    ThreadedTcpServer,
    encode_frame,
    recv_frame,
    send_frame,
)
from repro.net.client import ConnectionLostError, ConnectionPool, RemoteConnection, parse_tcp_url
from repro.outsourcing import MessageKind, MessageV2, OutsourcedDatabaseServer
from repro.outsourcing.protocol import PROTOCOL_V1

EMP_DECL = "Emp(name:string[14], dept:string[5], salary:int[6])"


@pytest.fixture
def provider():
    with ThreadedTcpServer() as server:
        yield server


def raw_connection(port: int) -> socket.socket:
    sock = socket.create_connection(("127.0.0.1", port), timeout=5.0)
    sock.settimeout(5.0)
    return sock


def send_hello(sock, versions=(1, 2)) -> dict:
    send_frame(sock, json.dumps({"op": "hello", "versions": list(versions)}).encode(),
               channel=CHANNEL_CONTROL)
    frame = recv_frame(sock)
    return json.loads(frame.payload)


class TestHelloNegotiation:
    def test_negotiates_highest_common_version(self, provider):
        sock = raw_connection(provider.port)
        try:
            hello = send_hello(sock)
            assert hello["ok"] and hello["version"] == 2
            assert hello["versions"] == [1, 2, 3]
            assert hello["max_frame_size"] > 0
        finally:
            sock.close()

    def test_v1_only_client_gets_v1(self, provider):
        sock = raw_connection(provider.port)
        try:
            assert send_hello(sock, versions=(1,))["version"] == 1
        finally:
            sock.close()

    def test_no_common_version_is_an_error(self, provider):
        sock = raw_connection(provider.port)
        try:
            hello = send_hello(sock, versions=(99,))
            assert not hello["ok"]
            assert "common protocol version" in hello["error"]
        finally:
            sock.close()

    def test_envelope_before_hello_rejected_and_closed(self, provider):
        sock = raw_connection(provider.port)
        try:
            frame = MessageV2(kind=MessageKind.QUERY, relation_name="Emp").to_bytes()
            send_frame(sock, frame, channel=CHANNEL_ENVELOPE)
            response = json.loads(recv_frame(sock).payload)
            assert not response["ok"]
            assert "hello" in response["error"]
            assert recv_frame(sock) is None  # server hung up
        finally:
            sock.close()

    def test_proxy_against_v1_only_provider(self):
        class V1OnlyServer(OutsourcedDatabaseServer):
            SUPPORTED_PROTOCOL_VERSIONS = (PROTOCOL_V1,)

        with ThreadedTcpServer(V1OnlyServer()) as server:
            proxy = RemoteServerProxy("127.0.0.1", server.port)
            try:
                assert proxy.supported_protocol_versions == (PROTOCOL_V1,)
                db = EncryptedDatabase.connect(proxy)
                assert db.protocol_version == PROTOCOL_V1
                db.create_table(EMP_DECL, rows=[("A", "HR", 1)])
                assert len(db.select("SELECT * FROM Emp WHERE dept = 'HR'").relation) == 1
            finally:
                proxy.close()


class TestHostileBytes:
    def test_garbage_stream_answered_with_error_then_closed(self, provider):
        sock = raw_connection(provider.port)
        try:
            sock.sendall(b"GET / HTTP/1.1\r\nHost: eve\r\n\r\n")
            frame = recv_frame(sock)
            assert frame.channel == CHANNEL_CONTROL
            assert not json.loads(frame.payload)["ok"]
            assert recv_frame(sock) is None
        finally:
            sock.close()

    def test_oversized_frame_rejected(self):
        with ThreadedTcpServer(max_frame_size=1024) as server:
            sock = raw_connection(server.port)
            try:
                sock.sendall((1024 * 1024).to_bytes(4, "big"))
                response = json.loads(recv_frame(sock).payload)
                assert not response["ok"]
                assert "exceeds" in response["error"]
            finally:
                sock.close()

    def test_truncated_frame_then_close_leaves_server_alive(self, provider):
        sock = raw_connection(provider.port)
        sock.sendall(encode_frame(b"x" * 64, channel=CHANNEL_CONTROL)[:-10])
        sock.close()  # peer dies mid-frame
        # the server survives and serves the next connection normally
        fresh = raw_connection(provider.port)
        try:
            assert send_hello(fresh)["ok"]
        finally:
            fresh.close()

    def test_garbage_envelope_after_hello_is_fatal_for_the_connection(self, provider):
        sock = raw_connection(provider.port)
        try:
            assert send_hello(sock)["ok"]
            send_frame(sock, b"\x00not-an-envelope", channel=CHANNEL_ENVELOPE)
            response = json.loads(recv_frame(sock).payload)
            assert not response["ok"]
            assert recv_frame(sock) is None
        finally:
            sock.close()

    def test_malformed_control_json_rejected(self, provider):
        sock = raw_connection(provider.port)
        try:
            send_frame(sock, b"{not json", channel=CHANNEL_CONTROL)
            response = json.loads(recv_frame(sock).payload)
            assert not response["ok"]
        finally:
            sock.close()

    def test_unknown_control_op_is_non_fatal(self, provider):
        sock = raw_connection(provider.port)
        try:
            assert send_hello(sock)["ok"]
            send_frame(sock, json.dumps({"op": "format-disk"}).encode(),
                       channel=CHANNEL_CONTROL)
            response = json.loads(recv_frame(sock).payload)
            assert not response["ok"]
            # ... but the connection survives protocol-level errors
            send_frame(sock, json.dumps({"op": "ping"}).encode(), channel=CHANNEL_CONTROL)
            assert json.loads(recv_frame(sock).payload)["ok"]
        finally:
            sock.close()


class TestConcurrentClients:
    def test_many_sessions_one_provider(self, provider, secret_key):
        """Six threads, each with its own table, hammering one provider."""
        errors = []

        def worker(index: int) -> None:
            try:
                db = EncryptedDatabase.connect(
                    f"tcp://127.0.0.1:{provider.port}", secret_key, pool_size=2
                )
                decl = f"T{index}(name:string[10], value:int[6])"
                db.create_table(decl, rows=[(f"row{i}", i) for i in range(20)])
                for i in range(10):
                    outcome = db.select(
                        f"SELECT * FROM T{index} WHERE value = {i}"
                    )
                    assert len(outcome.relation) == 1, (index, i)
                db.insert(f"T{index}", {"name": "extra", "value": 999})
                assert db.count(f"T{index}") == 21
                db.close()
            except Exception as exc:  # noqa: BLE001 - collected for the assert below
                errors.append((index, exc))

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors, errors
        stats = provider.server.stats
        assert stats.connections_total >= 6
        names = provider.server.database_server.relation_names
        assert set(names) == {f"T{i}" for i in range(6)}

    def test_stats_count_frames_and_bytes(self, provider, secret_key):
        db = EncryptedDatabase.connect(f"tcp://127.0.0.1:{provider.port}", secret_key)
        db.create_table(EMP_DECL, rows=[("A", "HR", 1)])
        db.select("SELECT * FROM Emp WHERE dept = 'HR'")
        proxy = db.server
        stats = proxy.server_stats()
        assert stats["stats"]["connections_total"] >= 1
        assert stats["stats"]["envelope_frames"] >= 2  # store + query
        assert stats["stats"]["control_frames"] >= 2  # hello + register
        assert stats["audit"]["query-executed"] >= 1
        assert stats["relations"] == ["Emp"]
        db.close()


class TestReconnect:
    def test_client_survives_a_provider_restart(self, secret_key):
        """The same provider state behind a bounced TCP front-end."""
        database = OutsourcedDatabaseServer()
        first = ThreadedTcpServer(database).start()
        port = first.port
        db = EncryptedDatabase.connect(f"tcp://127.0.0.1:{port}", secret_key)
        db.create_table(EMP_DECL, rows=[("A", "HR", 1), ("B", "IT", 2)])
        assert db.count("Emp") == 2
        first.stop()

        # every pooled connection is now dead; restart on the same port
        second = ThreadedTcpServer(database, port=port).start()
        try:
            assert db.count("Emp") == 2  # transparent retry on a fresh socket
            assert len(db.select("SELECT * FROM Emp WHERE dept = 'HR'").relation) == 1
            db.insert("Emp", {"name": "C", "dept": "HR", "salary": 3})
            assert db.count("Emp") == 3
            db.close()
        finally:
            second.stop()

    def test_call_with_provider_down_raises_remote_error(self, secret_key):
        server = ThreadedTcpServer().start()
        port = server.port
        db = EncryptedDatabase.connect(f"tcp://127.0.0.1:{port}", secret_key)
        db.create_table(EMP_DECL, rows=[("A", "HR", 1)])
        server.stop()
        with pytest.raises(Exception) as excinfo:
            db.count("Emp")
        # surfaced through the facade's error type, not a raw socket error
        from repro.api import DatabaseError

        assert isinstance(excinfo.value, DatabaseError)
        db.close()


class TestClientPieces:
    def test_parse_tcp_url(self):
        assert parse_tcp_url("tcp://localhost:7707") == ("localhost", 7707)
        for bad in ("http://x:1", "tcp://nohost", "tcp://h:1/path", "tcp://:9",
                    "tcp://h:abc", "tcp://h:99999"):
            with pytest.raises(RemoteError):
                parse_tcp_url(bad)

    def test_connect_refused_surfaces_cleanly(self):
        with socket.socket() as placeholder:
            placeholder.bind(("127.0.0.1", 0))
            unused_port = placeholder.getsockname()[1]
        with pytest.raises(ConnectionLostError):
            RemoteConnection("127.0.0.1", unused_port, timeout=1.0)

    def test_pool_bounds_concurrent_checkouts(self, provider):
        built = []

        def factory():
            connection = RemoteConnection("127.0.0.1", provider.port)
            built.append(connection)
            return connection

        pool = ConnectionPool(factory, max_size=2)
        with pool.checkout() as a, pool.checkout() as b:
            assert a is not b
        # both went back to the pool; a third checkout reuses, not rebuilds
        with pool.checkout():
            pass
        assert len(built) == 2
        pool.close()

    def test_pool_discards_broken_connections(self, provider):
        pool = ConnectionPool(
            lambda: RemoteConnection("127.0.0.1", provider.port), max_size=2
        )
        with pytest.raises(RuntimeError):
            with pool.checkout() as connection:
                raise RuntimeError("boom")
        # the failed connection was not returned to the pool
        with pool.checkout() as fresh:
            assert fresh.call_control("ping")["ok"]
        pool.close()

    def test_pool_reuses_connection_after_protocol_level_error(self, provider):
        """An ok:false answer completes the round trip; no reconnect churn."""
        built = []

        def factory():
            connection = RemoteConnection("127.0.0.1", provider.port)
            built.append(connection)
            return connection

        pool = ConnectionPool(factory, max_size=2)
        with pytest.raises(RemoteError):
            with pool.checkout() as connection:
                connection.call_control("stored-relation", relation="nope")
        with pool.checkout() as connection:
            assert connection.call_control("ping")["ok"]
        assert len(built) == 1  # the same healthy connection served both
        pool.close()

    def test_non_idempotent_ops_are_not_retried_once_delivered(self, provider):
        proxy = RemoteServerProxy("127.0.0.1", provider.port)
        calls = []

        def exploding(connection):
            calls.append(connection)
            raise ConnectionLostError("late failure", request_delivered=True)

        # delivered + idempotent -> one retry; delivered + non-idempotent -> none
        with pytest.raises(ConnectionLostError):
            proxy._call(exploding, idempotent=True)
        assert len(calls) == 2
        calls.clear()
        with pytest.raises(ConnectionLostError):
            proxy._call(exploding, idempotent=False)
        assert len(calls) == 1
        proxy.close()

    def test_closed_pool_rejects_checkout(self, provider):
        pool = ConnectionPool(
            lambda: RemoteConnection("127.0.0.1", provider.port), max_size=1
        )
        pool.close()
        with pytest.raises(RemoteError, match="closed"):
            with pool.checkout():
                pass


class TestGracefulShutdown:
    def test_stop_drains_and_reports(self, secret_key):
        server = ThreadedTcpServer().start()
        db = EncryptedDatabase.connect(f"tcp://127.0.0.1:{server.port}", secret_key)
        db.create_table(EMP_DECL, rows=[("A", "HR", 1)])
        db.close()
        server.stop()
        stats = server.server.stats
        assert stats.connections_active == 0
        assert stats.connections_total >= 1
        assert stats.frames_received == stats.envelope_frames + stats.control_frames
        assert "connection(s)" in stats.throughput_summary()

    def test_double_stop_is_idempotent(self):
        server = ThreadedTcpServer().start()
        server.stop()
        server.stop()
