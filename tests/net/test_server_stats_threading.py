"""TcpServerStats under concurrency: no lost updates, old read surface kept.

The original dataclass was mutated with bare ``+=`` from responder tasks and
dispatcher threads at once, so increments could be lost.  The registry-backed
facade must count exactly under the same hammering.
"""

from __future__ import annotations

import threading

from repro.net.server import TcpServerStats

THREADS = 8
ROUNDS = 2_500


class TestConcurrentMutation:
    def test_parallel_increments_are_exact(self):
        stats = TcpServerStats()

        def worker():
            for _ in range(ROUNDS):
                stats.inc("frames_received")
                stats.inc("bytes_received", 100)
                stats.inc("connections_active")
                stats.dec("connections_active")

        threads = [threading.Thread(target=worker) for _ in range(THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert stats.frames_received == THREADS * ROUNDS
        assert stats.bytes_received == THREADS * ROUNDS * 100
        assert stats.connections_active == 0

    def test_mixed_counter_traffic_from_many_threads(self):
        stats = TcpServerStats(dispatch_workers=4)
        barrier = threading.Barrier(THREADS)

        def worker():
            barrier.wait()
            for _ in range(ROUNDS):
                stats.inc("envelope_frames")
                stats.inc("frames_sent")
                stats.inc("bytes_sent", 7)

        threads = [threading.Thread(target=worker) for _ in range(THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        as_dict = stats.as_dict()
        assert as_dict["envelope_frames"] == THREADS * ROUNDS
        assert as_dict["frames_sent"] == THREADS * ROUNDS
        assert as_dict["bytes_sent"] == THREADS * ROUNDS * 7
        assert as_dict["dispatch_workers"] == 4


class TestReadSurface:
    def test_attribute_reads_and_dict_order_are_preserved(self):
        stats = TcpServerStats(dispatch_workers=2)
        stats.inc("connections_total")
        stats.inc("framing_errors")
        assert stats.connections_total == 1
        assert stats.framing_errors == 1
        assert list(stats.as_dict()) == [
            "connections_total",
            "connections_active",
            "frames_received",
            "frames_sent",
            "bytes_received",
            "bytes_sent",
            "envelope_frames",
            "control_frames",
            "framing_errors",
            "dispatch_workers",
            "peak_concurrent_dispatch",
            "requests_dispatched",
        ]

    def test_unknown_attribute_still_raises(self):
        stats = TcpServerStats()
        try:
            stats.not_a_counter
        except AttributeError as exc:
            assert "not_a_counter" in str(exc)
        else:
            raise AssertionError("expected AttributeError")

    def test_counters_feed_the_metrics_plane(self):
        stats = TcpServerStats()
        stats.inc("frames_received", 5)
        snapshot = stats.metrics.snapshot()
        by_name = {c["name"]: c["value"] for c in snapshot["counters"]}
        assert by_name["server_frames_received"] == 5

    def test_throughput_summary_mentions_every_headline(self):
        stats = TcpServerStats(dispatch_workers=3)
        stats.inc("connections_total")
        summary = stats.throughput_summary()
        assert "1 connection(s)" in summary
        assert "3 worker(s)" in summary
