"""Tests for the Song--Wagner--Perrig searchable encryption scheme."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.errors import ParameterError
from repro.crypto.rng import DeterministicRng
from repro.searchable.swp import SwpScheme, swp_search
from repro.searchable.tokens import SwpToken
from repro.searchable.words import Word

KEY = b"k" * 32
WORD_LENGTH = 12


def make_scheme(check_length: int = 4, seed: int = 1) -> SwpScheme:
    return SwpScheme(KEY, WORD_LENGTH, check_length=check_length, rng=DeterministicRng(seed))


def words(*texts: str) -> list[Word]:
    return [Word(t.encode().ljust(WORD_LENGTH, b"_")) for t in texts]


class TestSwpParameters:
    def test_word_length_exposed(self):
        assert make_scheme().word_length == WORD_LENGTH

    def test_check_length_bounds(self):
        with pytest.raises(ParameterError):
            SwpScheme(KEY, WORD_LENGTH, check_length=0)
        with pytest.raises(ParameterError):
            SwpScheme(KEY, WORD_LENGTH, check_length=WORD_LENGTH)
        with pytest.raises(ParameterError):
            SwpScheme(KEY, 1)

    def test_false_positive_rate(self):
        assert make_scheme(check_length=2).false_positive_rate() == pytest.approx(2.0 ** -16)
        assert make_scheme(check_length=4).false_positive_rate() == pytest.approx(2.0 ** -32)


class TestSwpEncryptionDecryption:
    def test_roundtrip(self):
        scheme = make_scheme()
        document_words = words("alpha", "beta", "gamma")
        document = scheme.encrypt_document(document_words)
        assert scheme.decrypt_document(document) == document_words

    def test_ciphertext_word_length_preserved(self):
        scheme = make_scheme()
        document = scheme.encrypt_document(words("alpha", "beta"))
        assert all(len(c) == WORD_LENGTH for c in document.encrypted_words)

    def test_randomized_across_documents(self):
        scheme = make_scheme()
        first = scheme.encrypt_document(words("alpha"))
        second = scheme.encrypt_document(words("alpha"))
        assert first.encrypted_words[0] != second.encrypted_words[0]
        assert first.document_id != second.document_id

    def test_repeated_word_within_document_encrypts_differently(self):
        scheme = make_scheme()
        document = scheme.encrypt_document(words("alpha", "alpha"))
        assert document.encrypted_words[0] != document.encrypted_words[1]

    def test_wrong_word_length_rejected(self):
        scheme = make_scheme()
        with pytest.raises(ParameterError):
            scheme.encrypt_document([Word(b"short")])
        with pytest.raises(ParameterError):
            scheme.trapdoor(Word(b"short"))

    def test_empty_document(self):
        scheme = make_scheme()
        document = scheme.encrypt_document([])
        assert document.encrypted_words == ()
        assert scheme.decrypt_document(document) == []


class TestSwpSearch:
    def test_finds_present_word(self):
        scheme = make_scheme()
        document = scheme.encrypt_document(words("alpha", "beta", "gamma"))
        match = scheme.search(document, scheme.trapdoor(words("beta")[0]))
        assert match.matched
        assert match.positions == (1,)

    def test_does_not_find_absent_word(self):
        scheme = make_scheme()
        document = scheme.encrypt_document(words("alpha", "beta"))
        match = scheme.search(document, scheme.trapdoor(words("delta")[0]))
        assert not match.matched
        assert match.positions == ()

    def test_finds_all_occurrences(self):
        scheme = make_scheme()
        document = scheme.encrypt_document(words("alpha", "beta", "alpha"))
        match = scheme.search(document, scheme.trapdoor(words("alpha")[0]))
        assert match.positions == (0, 2)

    def test_no_false_negatives_over_many_documents(self):
        scheme = make_scheme()
        token = scheme.trapdoor(words("needle")[0])
        for index in range(50):
            document = scheme.encrypt_document(words("needle", f"filler{index}"))
            assert scheme.search(document, token).matched

    def test_keyless_search_function_matches_method(self):
        scheme = make_scheme()
        document = scheme.encrypt_document(words("alpha", "beta"))
        token = scheme.trapdoor(words("alpha")[0])
        assert swp_search(document, token, WORD_LENGTH, 4).positions == (0,)

    def test_search_with_wrong_key_token_finds_nothing(self):
        scheme = make_scheme()
        other = SwpScheme(b"q" * 32, WORD_LENGTH, check_length=4, rng=DeterministicRng(2))
        document = scheme.encrypt_document(words("alpha"))
        assert not scheme.search(document, other.trapdoor(words("alpha")[0])).matched

    def test_token_serialization_roundtrip(self):
        scheme = make_scheme()
        token = scheme.trapdoor(words("alpha")[0])
        parsed = SwpToken.from_bytes(token.to_bytes())
        assert parsed == token

    def test_token_parse_errors(self):
        with pytest.raises(ValueError):
            SwpToken.from_bytes(b"")
        with pytest.raises(ValueError):
            SwpToken.from_bytes(b"\x00\xff")  # announces 255 bytes, has none

    def test_false_positive_rate_with_tiny_check(self):
        """With a 1-byte check value, false positives occur at rate ~2^-8."""
        scheme = make_scheme(check_length=1, seed=3)
        token = scheme.trapdoor(words("needle")[0])
        trials = 3000
        false_positives = 0
        for index in range(trials):
            document = scheme.encrypt_document(words(f"w{index}"))
            if scheme.search(document, token).matched:
                false_positives += 1
        rate = false_positives / trials
        assert rate < 0.03  # expected ~1/256 ~= 0.004; generous upper bound
        # and the false positives really are possible in principle: rate is an
        # upper bound check, absence in a finite sample is acceptable.


@given(texts=st.lists(st.text(alphabet="abcdefgh", min_size=1, max_size=8), min_size=0, max_size=6))
@settings(max_examples=40, deadline=None)
def test_property_roundtrip_and_search_consistency(texts):
    scheme = make_scheme(seed=11)
    document_words = words(*texts)
    document = scheme.encrypt_document(document_words)
    assert scheme.decrypt_document(document) == document_words
    for text in set(texts):
        word = words(text)[0]
        match = scheme.search(document, scheme.trapdoor(word))
        expected_positions = tuple(i for i, w in enumerate(document_words) if w == word)
        assert match.positions == expected_positions
