"""Tests for the secure-index searchable encryption backend."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.crypto.errors import DecryptionError, ParameterError
from repro.crypto.rng import DeterministicRng
from repro.searchable.index_sse import IndexSseScheme, index_search
from repro.searchable.interfaces import EncryptedDocument
from repro.searchable.tokens import IndexToken
from repro.searchable.words import Word

KEY = b"k" * 32
WORD_LENGTH = 10


def make_scheme(entry_length: int = 8, seed: int = 1) -> IndexSseScheme:
    return IndexSseScheme(KEY, WORD_LENGTH, entry_length=entry_length, rng=DeterministicRng(seed))


def words(*texts: str) -> list[Word]:
    return [Word(t.encode().ljust(WORD_LENGTH, b"_")) for t in texts]


class TestIndexSseParameters:
    def test_invalid_parameters(self):
        with pytest.raises(ParameterError):
            IndexSseScheme(KEY, 0)
        with pytest.raises(ParameterError):
            IndexSseScheme(KEY, WORD_LENGTH, entry_length=0)
        with pytest.raises(ParameterError):
            IndexSseScheme(KEY, WORD_LENGTH, entry_length=33)

    def test_false_positive_rate_scales_with_entry_length(self):
        assert make_scheme(entry_length=2).false_positive_rate() > make_scheme(
            entry_length=8
        ).false_positive_rate()


class TestIndexSseRoundtrip:
    def test_decrypt_recovers_words(self):
        scheme = make_scheme()
        document_words = words("alpha", "beta", "gamma")
        document = scheme.encrypt_document(document_words)
        assert scheme.decrypt_document(document) == document_words

    def test_index_size(self):
        scheme = make_scheme(entry_length=8)
        document = scheme.encrypt_document(words("a", "b", "c"))
        assert len(document.index) == 3 * 8

    def test_index_is_salted_per_document(self):
        scheme = make_scheme()
        first = scheme.encrypt_document(words("alpha"))
        second = scheme.encrypt_document(words("alpha"))
        assert first.index != second.index

    def test_wrong_word_length_rejected(self):
        scheme = make_scheme()
        with pytest.raises(ParameterError):
            scheme.encrypt_document([Word(b"x")])
        with pytest.raises(ParameterError):
            scheme.trapdoor(Word(b"x"))

    def test_decrypt_rejects_malformed_documents(self):
        scheme = make_scheme()
        document = scheme.encrypt_document(words("alpha"))
        broken = EncryptedDocument(
            document_id=document.document_id,
            encrypted_words=(),
            index=document.index,
        )
        with pytest.raises(DecryptionError):
            scheme.decrypt_document(broken)


class TestIndexSseSearch:
    def test_finds_present_word(self):
        scheme = make_scheme()
        document = scheme.encrypt_document(words("alpha", "beta"))
        assert scheme.search(document, scheme.trapdoor(words("alpha")[0])).matched

    def test_does_not_find_absent_word(self):
        scheme = make_scheme()
        document = scheme.encrypt_document(words("alpha", "beta"))
        assert not scheme.search(document, scheme.trapdoor(words("delta")[0])).matched

    def test_no_false_negatives_over_many_documents(self):
        scheme = make_scheme()
        token = scheme.trapdoor(words("needle")[0])
        for index in range(50):
            document = scheme.encrypt_document(words("needle", f"filler{index}"))
            assert scheme.search(document, token).matched

    def test_keyless_search_function(self):
        scheme = make_scheme(entry_length=8)
        document = scheme.encrypt_document(words("alpha"))
        token = scheme.trapdoor(words("alpha")[0])
        assert index_search(document, token, 8).matched
        assert not index_search(document, scheme.trapdoor(words("beta")[0]), 8).matched

    def test_search_rejects_malformed_index(self):
        token = IndexToken(label=b"\x00" * 32)
        broken = EncryptedDocument(document_id=b"d" * 16, index=b"odd-length!")
        with pytest.raises(DecryptionError):
            index_search(broken, token, 8)

    def test_token_serialization_roundtrip(self):
        scheme = make_scheme()
        token = scheme.trapdoor(words("alpha")[0])
        assert IndexToken.from_bytes(token.to_bytes()) == token

    def test_wrong_key_token_finds_nothing(self):
        scheme = make_scheme()
        other = IndexSseScheme(b"q" * 32, WORD_LENGTH, rng=DeterministicRng(9))
        document = scheme.encrypt_document(words("alpha"))
        assert not scheme.search(document, other.trapdoor(words("alpha")[0])).matched


@given(texts=st.lists(st.text(alphabet="abcdef", min_size=1, max_size=6), min_size=1, max_size=5))
@settings(max_examples=40, deadline=None)
def test_property_search_matches_plaintext_membership(texts):
    scheme = make_scheme(seed=5)
    document_words = words(*texts)
    document = scheme.encrypt_document(document_words)
    for probe in ["alpha", "bead", "fade"] + texts:
        word = words(probe)[0]
        expected = word in document_words
        assert scheme.search(document, scheme.trapdoor(word)).matched == expected
