"""Tests for the shared searchable-encryption data model."""

from __future__ import annotations

from repro.searchable.interfaces import EncryptedDocument, SearchMatch


class TestEncryptedDocument:
    def test_size_in_bytes_counts_all_components(self):
        document = EncryptedDocument(
            document_id=b"1234",
            encrypted_words=(b"abcd", b"efgh"),
            index=b"xy",
            payload=b"zz",
        )
        assert document.size_in_bytes() == 4 + 8 + 2 + 2

    def test_with_payload_preserves_other_fields(self):
        document = EncryptedDocument(document_id=b"1234", encrypted_words=(b"abcd",))
        updated = document.with_payload(b"payload")
        assert updated.payload == b"payload"
        assert updated.document_id == document.document_id
        assert updated.encrypted_words == document.encrypted_words
        assert document.payload == b""  # original untouched

    def test_defaults(self):
        document = EncryptedDocument(document_id=b"d")
        assert document.encrypted_words == ()
        assert document.index == b""
        assert document.payload == b""


class TestSearchMatch:
    def test_defaults(self):
        match = SearchMatch(matched=False)
        assert match.positions == ()

    def test_value_semantics(self):
        assert SearchMatch(True, (1, 2)) == SearchMatch(True, (1, 2))
        assert SearchMatch(True, (1,)) != SearchMatch(True, (2,))
