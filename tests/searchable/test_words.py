"""Tests for the word/document model (the paper's word layout)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.searchable.words import Word, WordCodec, WordError, max_value_width


class TestWord:
    def test_wraps_bytes(self):
        assert bytes(Word(b"abc")) == b"abc"
        assert len(Word(b"abc")) == 3

    def test_rejects_non_bytes(self):
        with pytest.raises(WordError):
            Word("text")  # type: ignore[arg-type]

    def test_value_semantics(self):
        assert Word(b"abc") == Word(b"abc")
        assert Word(b"abc") != Word(b"abd")
        assert hash(Word(b"abc")) == hash(Word(b"abc"))


class TestWordCodec:
    def test_paper_example_layout(self):
        """<name:"Montgomery", dept:"HR", sal:7500> from Section 3."""
        codec = WordCodec(value_width=10, id_width=1)
        assert bytes(codec.encode(b"N", b"Montgomery")) == b"MontgomeryN"
        assert bytes(codec.encode(b"D", b"HR")) == b"HR########D"
        assert bytes(codec.encode(b"S", b"7500")) == b"7500######S"

    def test_word_length(self):
        codec = WordCodec(value_width=10, id_width=1)
        assert codec.word_length == 11
        assert codec.value_width == 10
        assert codec.id_width == 1

    def test_decode_roundtrip(self):
        codec = WordCodec(value_width=10)
        attr_id, value = codec.decode(codec.encode(b"S", b"7500"))
        assert attr_id == b"S"
        assert value == b"7500"

    def test_decode_accessors(self):
        codec = WordCodec(value_width=8)
        word = codec.encode(b"D", b"HR")
        assert codec.attribute_id_of(word) == b"D"
        assert codec.value_of(word) == b"HR"

    def test_value_too_long_rejected(self):
        codec = WordCodec(value_width=4)
        with pytest.raises(WordError):
            codec.encode(b"N", b"Montgomery")

    def test_wrong_id_width_rejected(self):
        codec = WordCodec(value_width=4, id_width=1)
        with pytest.raises(WordError):
            codec.encode(b"NM", b"ab")

    def test_value_containing_pad_symbol_rejected(self):
        codec = WordCodec(value_width=8)
        with pytest.raises(WordError):
            codec.encode(b"N", b"a#b")

    def test_decode_wrong_length_rejected(self):
        codec = WordCodec(value_width=8, id_width=1)
        with pytest.raises(WordError):
            codec.decode(b"short")
        with pytest.raises(WordError):
            codec.decode(b"much-too-long-for-the-codec")

    def test_invalid_construction(self):
        with pytest.raises(WordError):
            WordCodec(value_width=0)
        with pytest.raises(WordError):
            WordCodec(value_width=4, id_width=0)

    def test_max_value_width(self):
        assert max_value_width([b"a", b"abcd", b"ab"]) == 4
        assert max_value_width([]) == 1


@given(
    value=st.binary(min_size=0, max_size=20).filter(lambda v: b"#" not in v),
    attr_id=st.binary(min_size=1, max_size=1),
    extra=st.integers(min_value=0, max_value=10),
)
@settings(max_examples=80, deadline=None)
def test_property_codec_roundtrip(value, attr_id, extra):
    width = max(1, len(value) + extra)
    codec = WordCodec(value_width=width, id_width=1)
    decoded_id, decoded_value = codec.decode(codec.encode(attr_id, value))
    assert decoded_id == attr_id
    assert decoded_value == value
