"""Tests for caller-supplied document nonces and cross-scheme nonce sharing.

The variable-width construction reuses one tuple nonce across independently
keyed per-attribute SWP instances; these tests pin down the properties that
make this safe and useful.
"""

from __future__ import annotations

import pytest

from repro.crypto.errors import ParameterError
from repro.crypto.kdf import derive_key
from repro.crypto.rng import DeterministicRng
from repro.searchable.swp import DOCUMENT_ID_LEN, SwpScheme
from repro.searchable.words import Word

KEY = b"k" * 32


def word(text: str, length: int = 10) -> Word:
    return Word(text.encode().ljust(length, b"_"))


class TestExplicitDocumentIds:
    def test_explicit_nonce_is_used(self):
        scheme = SwpScheme(KEY, 10, check_length=3, rng=DeterministicRng(1))
        nonce = b"n" * DOCUMENT_ID_LEN
        document = scheme.encrypt_document([word("alpha")], document_id=nonce)
        assert document.document_id == nonce

    def test_wrong_nonce_length_rejected(self):
        scheme = SwpScheme(KEY, 10, check_length=3)
        with pytest.raises(ParameterError):
            scheme.encrypt_document([word("alpha")], document_id=b"short")

    def test_same_nonce_same_key_is_deterministic(self):
        """Reusing a nonce under one key repeats ciphertexts -- the caller's burden."""
        scheme = SwpScheme(KEY, 10, check_length=3, rng=DeterministicRng(2))
        nonce = b"n" * DOCUMENT_ID_LEN
        first = scheme.encrypt_document([word("alpha")], document_id=nonce)
        second = scheme.encrypt_document([word("alpha")], document_id=nonce)
        assert first.encrypted_words == second.encrypted_words

    def test_same_nonce_under_independent_keys_is_unrelated(self):
        """The property the variable-width construction relies on."""
        nonce = b"n" * DOCUMENT_ID_LEN
        first = SwpScheme(derive_key(KEY, "attr/name"), 10, check_length=3)
        second = SwpScheme(derive_key(KEY, "attr/dept"), 10, check_length=3)
        doc_1 = first.encrypt_document([word("alpha")], document_id=nonce)
        doc_2 = second.encrypt_document([word("alpha")], document_id=nonce)
        assert doc_1.encrypted_words[0] != doc_2.encrypted_words[0]
        # Each scheme still decrypts and searches its own document correctly.
        assert first.decrypt_document(doc_1) == [word("alpha")]
        assert second.decrypt_document(doc_2) == [word("alpha")]
        assert first.search(doc_1, first.trapdoor(word("alpha"))).matched
        assert not first.search(doc_2, first.trapdoor(word("alpha"))).matched

    def test_decryption_uses_stored_nonce(self):
        scheme = SwpScheme(KEY, 10, check_length=3, rng=DeterministicRng(3))
        nonce = bytes(range(DOCUMENT_ID_LEN))
        document = scheme.encrypt_document([word("alpha"), word("beta")], document_id=nonce)
        assert scheme.decrypt_document(document) == [word("alpha"), word("beta")]

    def test_search_still_works_with_explicit_nonce(self):
        scheme = SwpScheme(KEY, 10, check_length=3, rng=DeterministicRng(4))
        nonce = b"z" * DOCUMENT_ID_LEN
        document = scheme.encrypt_document([word("alpha"), word("beta")], document_id=nonce)
        assert scheme.search(document, scheme.trapdoor(word("beta"))).positions == (1,)
        assert not scheme.search(document, scheme.trapdoor(word("gamma"))).matched
