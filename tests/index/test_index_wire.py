"""Round-trips and error handling of the index wire codecs."""

from __future__ import annotations

import pytest

from repro.core import SearchableSelectDph
from repro.index.wire import (
    IndexDelta,
    IndexLookupRequest,
    IndexSnapshot,
    decode_index_delta,
    decode_index_lookup,
    decode_index_snapshot,
    encode_index_delta,
    encode_index_lookup,
    encode_index_snapshot,
)
from repro.outsourcing.protocol import ProtocolError
from repro.relational import Selection


def _ids(*values):
    return tuple(bytes([v]) * 16 for v in values)


class TestSnapshotCodec:
    def test_round_trip(self):
        snapshot = IndexSnapshot(
            bucket_capacity=3,
            entries={
                b"L1" * 16: (_ids(1, 2, 3), _ids(4, 5, 6)),
                b"L2" * 16: (_ids(7, 8, 9),),
            },
        )
        decoded = decode_index_snapshot(encode_index_snapshot(snapshot))
        assert decoded == snapshot
        assert decoded.posting_slots() == 9

    def test_empty_snapshot_round_trips(self):
        snapshot = IndexSnapshot(bucket_capacity=8, entries={})
        assert decode_index_snapshot(encode_index_snapshot(snapshot)) == snapshot

    def test_truncated_rejected(self):
        with pytest.raises(ProtocolError, match="truncated"):
            decode_index_snapshot(b"\x00\x00")

    def test_zero_capacity_rejected(self):
        raw = encode_index_snapshot(IndexSnapshot(bucket_capacity=1, entries={}))
        with pytest.raises(ProtocolError, match="capacity"):
            decode_index_snapshot(b"\x00\x00\x00\x00" + raw[4:])

    def test_overfull_bucket_rejected(self):
        raw = encode_index_snapshot(
            IndexSnapshot(bucket_capacity=2, entries={b"L": (_ids(1, 2, 3),)})
        )
        with pytest.raises(ProtocolError, match="exceeds"):
            decode_index_snapshot(raw)

    def test_trailing_bytes_rejected(self):
        raw = encode_index_snapshot(IndexSnapshot(bucket_capacity=2, entries={}))
        with pytest.raises(ProtocolError, match="trailing"):
            decode_index_snapshot(raw + b"x")


class TestDeltaCodec:
    def test_round_trip(self):
        delta = IndexDelta(
            additions=((b"L1", _ids(1)[0]), (b"L2", _ids(2)[0])),
            removals=((b"L1", _ids(3)[0]),),
        )
        assert decode_index_delta(encode_index_delta(delta)) == delta

    def test_empty_delta_is_falsy(self):
        delta = decode_index_delta(encode_index_delta(IndexDelta()))
        assert not delta
        assert delta == IndexDelta()

    def test_trailing_bytes_rejected(self):
        raw = encode_index_delta(IndexDelta())
        with pytest.raises(ProtocolError, match="trailing"):
            decode_index_delta(raw + b"x")


class TestLookupCodec:
    def test_round_trip_without_fallback(self):
        request = IndexLookupRequest(labels=(b"A" * 32, b"B" * 32))
        decoded = decode_index_lookup(encode_index_lookup(request))
        assert decoded == request
        assert decoded.fallback_query is None

    def test_round_trip_with_fallback(
        self, employee_schema, secret_key, rng
    ):
        dph = SearchableSelectDph(employee_schema, secret_key, backend="swp", rng=rng)
        fallback = dph.encrypt_query(Selection.equals("dept", "HR"))
        request = IndexLookupRequest(labels=(b"A" * 32,), fallback_query=fallback)
        decoded = decode_index_lookup(encode_index_lookup(request))
        assert decoded.labels == request.labels
        assert decoded.fallback_query is not None

    def test_truncated_rejected(self):
        raw = encode_index_lookup(IndexLookupRequest(labels=(b"A",)))
        with pytest.raises(ProtocolError, match="truncated"):
            decode_index_lookup(raw[:-1])

    def test_unknown_flag_rejected(self):
        raw = encode_index_lookup(IndexLookupRequest(labels=(b"A",)))
        with pytest.raises(ProtocolError, match="flag"):
            decode_index_lookup(raw[:-1] + b"\x07")

    def test_bare_lookup_trailing_bytes_rejected(self):
        raw = encode_index_lookup(IndexLookupRequest(labels=(b"A",)))
        with pytest.raises(ProtocolError, match="trailing"):
            decode_index_lookup(raw + b"x")
