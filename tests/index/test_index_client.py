"""Unit tests for the client-side :class:`TableIndexer`."""

from __future__ import annotations

import pytest

from repro.core import SearchableSelectDph
from repro.index import DEFAULT_BUCKET_CAPACITY, IndexingError, TableIndexer
from repro.relational import Selection
from repro.relational.errors import QueryError
from repro.relational.query import ConjunctiveSelection, Projection


@pytest.fixture
def indexer(employee_schema, secret_key, rng):
    return TableIndexer(
        employee_schema, secret_key.subkey("index/Emp"), rng=rng
    )


@pytest.fixture
def encrypted_pair(employee_schema, employee_relation, secret_key, rng):
    dph = SearchableSelectDph(employee_schema, secret_key, backend="swp", rng=rng)
    return employee_relation, dph.encrypt_relation(employee_relation)


class TestLabels:
    def test_labels_are_deterministic(self, indexer):
        assert indexer.label("dept", "HR") == indexer.label("dept", "HR")

    def test_labels_separate_attributes_and_values(self, indexer):
        labels = {
            indexer.label("dept", "HR"),
            indexer.label("dept", "IT"),
            indexer.label("name", "HR"),  # same value, other attribute
        }
        assert len(labels) == 3

    def test_labels_differ_across_keys(self, employee_schema, secret_key, rng):
        one = TableIndexer(employee_schema, secret_key.subkey("index/A"), rng=rng)
        two = TableIndexer(employee_schema, secret_key.subkey("index/B"), rng=rng)
        assert one.label("dept", "HR") != two.label("dept", "HR")

    def test_tuple_labels_cover_every_attribute(self, indexer, employee_relation):
        row = employee_relation.tuples[0]
        labels = indexer.tuple_labels(row)
        assert len(labels) == 3
        assert indexer.label("dept", row.value("dept")) in labels

    def test_query_labels_for_conjunctions(self, indexer):
        query = ConjunctiveSelection.of(("dept", "HR"), ("salary", 7500))
        assert len(indexer.query_labels(query)) == 2

    def test_query_labels_through_projections(self, indexer):
        query = Projection(Selection.equals("dept", "HR"), ("name",))
        assert indexer.query_labels(query) == (indexer.label("dept", "HR"),)

    def test_unsupported_query_shapes_raise(self, indexer):
        with pytest.raises(QueryError):
            indexer.query_labels(object())


class TestSnapshot:
    def test_buckets_padded_to_capacity(self, indexer, encrypted_pair):
        relation, encrypted = encrypted_pair
        snapshot = indexer.snapshot(relation, encrypted)
        assert snapshot.bucket_capacity == DEFAULT_BUCKET_CAPACITY
        for buckets in snapshot.entries.values():
            assert all(len(b) == DEFAULT_BUCKET_CAPACITY for b in buckets)

    def test_real_ids_present_dummies_fresh(self, indexer, encrypted_pair):
        relation, encrypted = encrypted_pair
        snapshot = indexer.snapshot(relation, encrypted)
        real = {t.tuple_id for t in encrypted.encrypted_tuples}
        hr_label = indexer.label("dept", "HR")
        hr_ids = {
            t.tuple_id
            for row, t in zip(relation.tuples, encrypted.encrypted_tuples)
            if row.value("dept") == "HR"
        }
        flat = {i for bucket in snapshot.entries[hr_label] for i in bucket}
        assert hr_ids <= flat
        # padding ids are fresh nonces, not recycled real ids
        assert flat - hr_ids, "expected dummy padding"
        assert not (flat - hr_ids) & real

    def test_overflowing_label_spills_into_more_buckets(
        self, employee_schema, secret_key, rng
    ):
        from repro.relational import Relation

        indexer = TableIndexer(
            employee_schema, secret_key.subkey("index/Emp"),
            bucket_capacity=2, rng=rng,
        )
        relation = Relation.from_rows(
            employee_schema, [(f"e{i}", "HR", 1) for i in range(5)]
        )
        dph = SearchableSelectDph(employee_schema, secret_key, backend="swp", rng=rng)
        snapshot = indexer.snapshot(relation, dph.encrypt_relation(relation))
        assert len(snapshot.entries[indexer.label("dept", "HR")]) == 3

    def test_misaligned_relations_rejected(self, indexer, encrypted_pair):
        from repro.relational import Relation

        relation, encrypted = encrypted_pair
        shorter = Relation(relation.schema, list(relation.tuples)[:-1])
        with pytest.raises(IndexingError, match="different sizes"):
            indexer.snapshot(shorter, encrypted)

    def test_bucket_capacity_must_be_positive(self, employee_schema, secret_key):
        with pytest.raises(IndexingError):
            TableIndexer(
                employee_schema, secret_key.subkey("index/Emp"), bucket_capacity=0
            )


class TestDeltas:
    def test_insert_delta_adds_one_posting_per_attribute(
        self, indexer, employee_relation
    ):
        row = employee_relation.tuples[0]
        delta = indexer.insert_delta(row, b"i" * 16)
        assert len(delta.additions) == 3
        assert not delta.removals
        assert all(tuple_id == b"i" * 16 for _, tuple_id in delta.additions)

    def test_remove_delta_mirrors_insert_delta(self, indexer, employee_relation):
        row = employee_relation.tuples[0]
        added = indexer.insert_delta(row, b"i" * 16)
        removed = indexer.remove_delta([(row, b"i" * 16)])
        assert set(removed.removals) == set(added.additions)
        assert not removed.additions
