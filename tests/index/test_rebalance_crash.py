"""Regression: indexed lookups survive a crash-injected rebalance.

The insert-first rebalancer can die between its insert and delete phases
(the moral equivalent of a SIGKILL mid-migration), leaving transient
duplicate copies and shards whose index never saw the migrated tuples.
``INDEX_LOOKUP`` must keep answering exactly what a scan answers: merged
across shards, deduplicated by public tuple id, never missing a tuple
and never double-counting one.
"""

from __future__ import annotations

import pytest

from repro.api import EncryptedDatabase
from repro.outsourcing import OutsourcedDatabaseServer

EMP_DECL = "Emp(name:string[14], dept:string[5], salary:int[6])"
ROWS = [(f"emp{i}", "HR" if i % 2 else "IT", 1000 + i) for i in range(40)]


def _names(outcome):
    return sorted(t.value("name") for t in outcome.relation.tuples)


@pytest.fixture
def crashed(secret_key, rng):
    """An indexed 2-shard session grown to 3, crashed mid-rebalance."""
    db = EncryptedDatabase.open(
        secret_key,
        shards=[OutsourcedDatabaseServer(), OutsourcedDatabaseServer()],
        rng=rng,
        index=True,
    )
    db.create_table(EMP_DECL, rows=ROWS)
    router = db.server
    router.add_shard(OutsourcedDatabaseServer(), rebalance=False)
    saboteurs = []
    for shard_id in router.shard_ids:
        backend = router.shard(shard_id)

        def refuse(name, tuple_ids):
            raise ConnectionError("killed before the delete phase")

        backend.delete_tuples = refuse  # shadow the bound method
        saboteurs.append(backend)
    with pytest.raises(ConnectionError):
        router.rebalance()
    for backend in saboteurs:
        del backend.delete_tuples
    return db


class TestIndexedLookupsUnderCrashDuplicates:
    def test_crash_really_left_duplicates(self, crashed):
        counts = crashed.server.per_shard_tuple_counts("Emp")
        assert sum(counts.values()) > len(ROWS)
        assert counts["shard-2"] > 0  # the migration's inserts landed

    def test_indexed_results_equal_scan_results(self, crashed, secret_key):
        assert crashed.index_active
        scan = EncryptedDatabase.open(secret_key, server=crashed.server)
        scan.attach_table(EMP_DECL)
        for where in ("dept = 'HR'", "dept = 'IT'", "name = 'emp17'"):
            indexed = crashed.select(f"SELECT * FROM Emp WHERE {where}")
            scanned = scan.select(f"SELECT * FROM Emp WHERE {where}")
            assert _names(indexed) == _names(scanned), where

    def test_duplicates_are_answered_once(self, crashed):
        outcome = crashed.select("SELECT * FROM Emp WHERE dept = 'HR'")
        names = _names(outcome)
        assert names == sorted(n for n, d, _ in ROWS if d == "HR")
        assert len(names) == len(set(names))  # dedup by tuple id held

    def test_crud_keeps_matching_scans_after_the_crash(self, crashed, secret_key):
        assert crashed.delete("SELECT * FROM Emp WHERE name = 'emp1'") == 1
        crashed.update("SELECT * FROM Emp WHERE name = 'emp3'", {"dept": "OPS"})
        crashed.insert("Emp", {"name": "Zoe", "dept": "HR", "salary": 1})
        scan = EncryptedDatabase.open(secret_key, server=crashed.server)
        scan.attach_table(EMP_DECL)
        for where in ("dept = 'HR'", "dept = 'OPS'", "name = 'emp1'"):
            indexed = crashed.select(f"SELECT * FROM Emp WHERE {where}")
            scanned = scan.select(f"SELECT * FROM Emp WHERE {where}")
            assert _names(indexed) == _names(scanned), where

    def test_recovery_rebalance_keeps_lookups_consistent(self, crashed, secret_key):
        report = crashed.server.rebalance()
        assert report.removed > 0  # the stale copies died this time
        scan = EncryptedDatabase.open(secret_key, server=crashed.server)
        scan.attach_table(EMP_DECL)
        for where in ("dept = 'HR'", "dept = 'IT'"):
            indexed = crashed.select(f"SELECT * FROM Emp WHERE {where}")
            scanned = scan.select(f"SELECT * FROM Emp WHERE {where}")
            assert _names(indexed) == _names(scanned), where
