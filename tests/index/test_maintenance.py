"""Index maintenance edge cases on the serving path.

Covers the corners the happy path skips: labels emptied by the last
delete, bucket-cap overflow spill, v1 providers negotiating the session
back to scans, mixed fleets where only some shards speak the index ops,
and the exact-delete protocol op under duplicates and replays.
"""

from __future__ import annotations

import pytest

from repro.api import EncryptedDatabase
from repro.outsourcing import OutsourcedDatabaseServer
from repro.outsourcing.protocol import PROTOCOL_V1, MessageKind
from repro.outsourcing.server import ServerError

EMP_DECL = "Emp(name:string[14], dept:string[5], salary:int[6])"
ROWS = [(f"emp{i}", "HR" if i % 2 else "IT", 1000 + i) for i in range(20)]


def _names(outcome):
    return sorted(t.value("name") for t in outcome.relation.tuples)


@pytest.fixture
def db(secret_key, rng):
    session = EncryptedDatabase.open(secret_key, rng=rng, index=True)
    session.create_table(EMP_DECL, rows=ROWS)
    return session


class TestEmptiedLabels:
    def test_deleting_every_match_empties_the_label(self, db):
        assert db.delete("SELECT * FROM Emp WHERE dept = 'HR'") == 10
        outcome = db.select("SELECT * FROM Emp WHERE dept = 'HR'")
        assert len(outcome.relation) == 0
        # the emptied label answers from the index (0 fetched), not by scan
        assert db.index_active
        assert outcome.evaluation.examined == 0

    def test_other_labels_survive_the_emptying(self, db):
        db.delete("SELECT * FROM Emp WHERE dept = 'HR'")
        outcome = db.select("SELECT * FROM Emp WHERE dept = 'IT'")
        assert len(outcome.relation) == 10
        assert outcome.evaluation.examined == 10

    def test_reinserting_after_emptying_resurrects_the_label(self, db):
        db.delete("SELECT * FROM Emp WHERE dept = 'HR'")
        db.insert("Emp", {"name": "Zoe", "dept": "HR", "salary": 1})
        outcome = db.select("SELECT * FROM Emp WHERE dept = 'HR'")
        assert _names(outcome) == ["Zoe"]
        assert outcome.evaluation.examined == 1


class TestOverflowSpill:
    def test_inserts_past_the_bucket_cap_seal_spill_buckets(self, db):
        index = db.server.index_access.index_for("Emp")
        capacity = index.bucket_capacity
        sealed_before = index.stats()["sealed_buckets"]
        for i in range(3 * capacity):
            db.insert("Emp", {"name": f"extra{i}", "dept": "OPS", "salary": 1})
        assert index.stats()["sealed_buckets"] > sealed_before
        # the open spill never exceeds a bucket
        assert index.stats()["spilled_postings"] < index.stats()["labels"] * capacity
        outcome = db.select("SELECT * FROM Emp WHERE dept = 'OPS'")
        assert len(outcome.relation) == 3 * capacity
        assert outcome.evaluation.examined == 3 * capacity


class V1OnlyServer(OutsourcedDatabaseServer):
    """A provider from before the v2 envelope existed."""

    SUPPORTED_PROTOCOL_VERSIONS = (PROTOCOL_V1,)


_INDEX_KINDS = frozenset(
    {
        MessageKind.INDEX_PUT,
        MessageKind.INDEX_DELTA,
        MessageKind.INDEX_LOOKUP,
        MessageKind.DELETE_TUPLES_EXACT,
    }
)


class NoIndexServer(OutsourcedDatabaseServer):
    """A v2 provider from before the index ops existed."""

    REFUSED = _INDEX_KINDS

    def _dispatch(self, request):
        if request.kind in self.REFUSED:
            raise ServerError(f"cannot serve message kind {request.kind.value!r}")
        return super()._dispatch(request)


class NoLookupServer(NoIndexServer):
    """Accepts index maintenance but cannot serve lookups (mid-upgrade)."""

    REFUSED = frozenset({MessageKind.INDEX_LOOKUP})


class TestV1Negotiation:
    def test_v1_provider_disables_indexing_silently(self, secret_key, rng):
        db = EncryptedDatabase.open(
            secret_key, server=V1OnlyServer(), rng=rng, index=True
        )
        assert not db.index_enabled
        assert not db.index_active
        db.create_table(EMP_DECL, rows=ROWS)
        outcome = db.select("SELECT * FROM Emp WHERE dept = 'HR'")
        assert len(outcome.relation) == 10


class TestPreIndexProvider:
    def test_session_falls_back_to_scans_and_stays_correct(self, secret_key, rng):
        db = EncryptedDatabase.open(
            secret_key, server=NoIndexServer(), rng=rng, index=True
        )
        db.create_table(EMP_DECL, rows=ROWS)
        # the failed INDEX_PUT memoized "provider has no index ops"
        assert db.index_enabled
        assert not db.index_active
        outcome = db.select("SELECT * FROM Emp WHERE dept = 'HR'")
        assert len(outcome.relation) == 10
        assert db.delete("SELECT * FROM Emp WHERE name = 'emp1'") == 1
        assert db.update("SELECT * FROM Emp WHERE name = 'emp3'", {"salary": 9}) == 1
        assert len(db.select("SELECT * FROM Emp WHERE dept = 'HR'").relation) == 9


class TestMixedFleet:
    def test_lookups_fall_back_per_shard(self, secret_key, rng):
        db = EncryptedDatabase.open(
            secret_key,
            shards=[OutsourcedDatabaseServer(), NoLookupServer()],
            rng=rng,
            index=True,
        )
        db.create_table(EMP_DECL, rows=ROWS)
        assert db.index_active  # maintenance succeeded fleet-wide
        outcome = db.select("SELECT * FROM Emp WHERE dept = 'HR'")
        assert len(outcome.relation) == 10
        # the lookup was served: indexed on one shard, by scan on the other
        assert db.server.stats.index_lookups >= 1
        assert db.server.stats.index_scan_fallbacks >= 1
        assert db.index_active  # per-shard fallback never disables the session

    def test_results_match_an_unindexed_twin(self, secret_key, rng):
        from repro.crypto.rng import DeterministicRng

        fleets = []
        for index in (True, False):
            db = EncryptedDatabase.open(
                secret_key,
                shards=[OutsourcedDatabaseServer(), NoLookupServer()],
                rng=DeterministicRng(7),
                index=index,
            )
            db.create_table(EMP_DECL, rows=ROWS)
            db.delete("SELECT * FROM Emp WHERE name = 'emp2'")
            db.update("SELECT * FROM Emp WHERE name = 'emp5'", {"dept": "OPS"})
            fleets.append(db)
        indexed, plain = fleets
        for where in ("dept = 'HR'", "dept = 'IT'", "dept = 'OPS'", "name = 'emp7'"):
            left = indexed.select(f"SELECT * FROM Emp WHERE {where}")
            right = plain.select(f"SELECT * FROM Emp WHERE {where}")
            assert _names(left) == _names(right), where


class TestExactDeletes:
    def test_replicated_fleet_counts_each_tuple_once(self, secret_key, rng):
        db = EncryptedDatabase.open(
            secret_key,
            shards=[OutsourcedDatabaseServer(), OutsourcedDatabaseServer()],
            replicas=2,
            rng=rng,
            index=True,
        )
        db.create_table(EMP_DECL, rows=ROWS)
        # every tuple exists twice physically; the logical count must not
        assert db.delete("SELECT * FROM Emp WHERE dept = 'HR'") == 10
        assert db.count("Emp") == 10

    def test_replayed_batch_reports_zero(self, secret_key, rng, employee_schema):
        from repro.core import SearchableSelectDph

        server = OutsourcedDatabaseServer()
        dph = SearchableSelectDph(employee_schema, secret_key, backend="swp", rng=rng)
        from repro.relational import Relation

        relation = Relation.from_rows(
            employee_schema, [("A", "HR", 1), ("B", "IT", 2)]
        )
        encrypted = dph.encrypt_relation(relation)
        server.store_relation("Emp", encrypted, dph.server_evaluator())
        ids = [t.tuple_id for t in encrypted.encrypted_tuples]
        first = server.delete_tuples_exact("Emp", ids)
        assert sorted(first) == sorted(ids)
        # a stale batch replayed after a crash deletes nothing more
        assert server.delete_tuples_exact("Emp", ids) == ()

    def test_duplicate_ids_in_one_batch_count_once(self, secret_key, rng, employee_schema):
        from repro.core import SearchableSelectDph
        from repro.relational import Relation

        server = OutsourcedDatabaseServer()
        dph = SearchableSelectDph(employee_schema, secret_key, backend="swp", rng=rng)
        relation = Relation.from_rows(employee_schema, [("A", "HR", 1)])
        encrypted = dph.encrypt_relation(relation)
        server.store_relation("Emp", encrypted, dph.server_evaluator())
        the_id = encrypted.encrypted_tuples[0].tuple_id
        assert server.delete_tuples_exact("Emp", [the_id, the_id]) == (the_id,)
