"""Unit tests for the provider-side index structures and access methods."""

from __future__ import annotations

import pytest

from repro.core import SearchableSelectDph
from repro.index import (
    IndexAccess,
    IndexDelta,
    IndexLookupRequest,
    IndexSnapshot,
    RelationIndex,
    ScanAccess,
)


def _id(v: int) -> bytes:
    return bytes([v]) * 16


L1, L2 = b"\x01" * 32, b"\x02" * 32


class TestRelationIndex:
    def test_from_snapshot_members(self):
        index = RelationIndex.from_snapshot(
            IndexSnapshot(bucket_capacity=2, entries={L1: ((_id(1), _id(2)),)})
        )
        assert index.candidates([L1]) == {_id(1), _id(2)}
        assert index.sealed_bucket_count(L1) == 1

    def test_additions_spill_then_seal(self):
        index = RelationIndex(bucket_capacity=2)
        index.apply_delta(IndexDelta(additions=((L1, _id(1)),)))
        assert index.spill_length(L1) == 1
        assert index.sealed_bucket_count(L1) == 0
        # capacity reached: the spill seals into a bucket (overflow spill)
        index.apply_delta(IndexDelta(additions=((L1, _id(2)),)))
        assert index.spill_length(L1) == 0
        assert index.sealed_bucket_count(L1) == 1
        assert index.candidates([L1]) == {_id(1), _id(2)}

    def test_apply_delta_is_idempotent(self):
        index = RelationIndex(bucket_capacity=4)
        delta = IndexDelta(additions=((L1, _id(1)),))
        index.apply_delta(delta)
        index.apply_delta(delta)  # replayed batch
        assert index.live_posting_count(L1) == 1
        assert index.spill_length(L1) == 1

    def test_removals_tombstone_not_shrink(self):
        index = RelationIndex.from_snapshot(
            IndexSnapshot(bucket_capacity=2, entries={L1: ((_id(1), _id(2)),)})
        )
        index.apply_delta(IndexDelta(removals=((L1, _id(1)),)))
        assert index.candidates([L1]) == {_id(2)}
        assert index.sealed_bucket_count(L1) == 1  # sealed buckets never shrink

    def test_label_empties_after_last_delete(self):
        index = RelationIndex(bucket_capacity=4)
        index.apply_delta(IndexDelta(additions=((L1, _id(1)),)))
        index.apply_delta(IndexDelta(removals=((L1, _id(1)),)))
        assert index.candidates([L1]) == set()
        # and an empty label annihilates any intersection
        index.apply_delta(IndexDelta(additions=((L2, _id(2)),)))
        assert index.candidates([L1, L2]) == set()

    def test_readdition_resurrects_a_tombstone(self):
        index = RelationIndex(bucket_capacity=4)
        index.apply_delta(IndexDelta(additions=((L1, _id(1)),)))
        index.apply_delta(IndexDelta(removals=((L1, _id(1)),)))
        index.apply_delta(IndexDelta(additions=((L1, _id(1)),)))
        assert index.candidates([L1]) == {_id(1)}

    def test_unknown_removals_ignored(self):
        index = RelationIndex(bucket_capacity=4)
        index.apply_delta(IndexDelta(removals=((L1, _id(9)),)))
        assert index.stats()["tombstones"] == 0

    def test_candidates_intersect(self):
        index = RelationIndex(bucket_capacity=4)
        index.apply_delta(
            IndexDelta(additions=((L1, _id(1)), (L1, _id(2)), (L2, _id(2))))
        )
        assert index.candidates([L1, L2]) == {_id(2)}

    def test_no_labels_means_no_candidates(self):
        assert RelationIndex(bucket_capacity=4).candidates([]) == set()


@pytest.fixture
def served(employee_schema, employee_relation, secret_key, rng):
    """An encrypted relation plus a live evaluator, as a provider holds them."""
    dph = SearchableSelectDph(employee_schema, secret_key, backend="swp", rng=rng)
    encrypted = dph.encrypt_relation(employee_relation)
    return dph, encrypted


class TestIndexAccess:
    def _snapshot_for(self, encrypted, label=L1, matching=2):
        ids = tuple(t.tuple_id for t in encrypted.encrypted_tuples[:matching])
        return IndexSnapshot(bucket_capacity=4, entries={label: (ids,)})

    def test_serves_only_indexed_relations(self, served):
        _, encrypted = served
        access = IndexAccess()
        request = IndexLookupRequest(labels=(L1,))
        assert not access.can_serve("Emp", request)
        access.put("Emp", self._snapshot_for(encrypted))
        assert access.can_serve("Emp", request)
        assert not access.can_serve("Other", request)

    def test_search_fetches_only_candidates(self, served):
        _, encrypted = served
        access = IndexAccess()
        access.put("Emp", self._snapshot_for(encrypted, matching=2))
        result = access.search("Emp", encrypted, IndexLookupRequest(labels=(L1,)))
        assert len(result.matching) == 2
        assert result.examined == 2  # O(result), not O(data)
        assert result.token_evaluations == 0

    def test_stale_and_dummy_candidates_fetch_nothing(self, served):
        _, encrypted = served
        access = IndexAccess()
        ids = (encrypted.encrypted_tuples[0].tuple_id, b"\xee" * 16)
        access.put(
            "Emp", IndexSnapshot(bucket_capacity=4, entries={L1: (ids,)})
        )
        result = access.search("Emp", encrypted, IndexLookupRequest(labels=(L1,)))
        assert len(result.matching) == 1
        assert result.examined == 1

    def test_delta_on_unindexed_relation_is_noop(self):
        access = IndexAccess()
        assert access.apply_delta("Emp", IndexDelta(additions=((L1, _id(1)),))) is False
        assert access.deltas == 0

    def test_note_store_drops_the_index(self, served):
        _, encrypted = served
        access = IndexAccess()
        access.put("Emp", self._snapshot_for(encrypted))
        access.note_store("Emp")
        assert access.index_for("Emp") is None
        assert not access.can_serve("Emp", IndexLookupRequest(labels=(L1,)))

    def test_mutation_hooks_keep_the_id_map_aligned(self, served):
        _, encrypted = served
        access = IndexAccess()
        first = encrypted.encrypted_tuples[0]
        access.put(
            "Emp",
            IndexSnapshot(bucket_capacity=4, entries={L1: ((first.tuple_id,),)}),
        )
        # lookup builds the id map lazily
        access.search("Emp", encrypted, IndexLookupRequest(labels=(L1,)))
        access.note_delete("Emp", [first.tuple_id])
        result = access.search("Emp", encrypted, IndexLookupRequest(labels=(L1,)))
        assert len(result.matching) == 0

    def test_stats_shape(self, served):
        _, encrypted = served
        access = IndexAccess()
        access.put("Emp", self._snapshot_for(encrypted))
        stats = access.stats()
        assert stats["indexed_relations"] == ["Emp"]
        assert stats["puts"] == 1
        assert stats["relations"]["Emp"]["bucket_capacity"] == 4


class TestScanAccess:
    def test_serves_only_with_a_fallback_query(self, served):
        dph, encrypted = served
        access = ScanAccess(lambda name, query: None)
        assert not access.can_serve("Emp", IndexLookupRequest(labels=(L1,)))
        from repro.relational import Selection

        fallback = dph.encrypt_query(Selection.equals("dept", "HR"))
        assert access.can_serve(
            "Emp", IndexLookupRequest(labels=(L1,), fallback_query=fallback)
        )

    def test_search_delegates_to_the_evaluate_callable(self, served):
        dph, encrypted = served
        from repro.relational import Selection

        calls = []

        def evaluate(name, query):
            calls.append((name, query))
            return "result"

        access = ScanAccess(evaluate)
        fallback = dph.encrypt_query(Selection.equals("dept", "HR"))
        request = IndexLookupRequest(labels=(L1,), fallback_query=fallback)
        assert access.search("Emp", encrypted, request) == "result"
        assert calls == [("Emp", fallback)]
