"""End-to-end tests of the :class:`EncryptedDatabase` session facade."""

from __future__ import annotations

import pytest

from repro.api import DatabaseError, EncryptedDatabase
from repro.outsourcing import (
    FileStorageBackend,
    InMemoryStorageBackend,
    OutsourcedDatabaseServer,
    OutsourcingClient,
    StorageError,
)
from repro.outsourcing.protocol import PROTOCOL_V1
from repro.relational import ConjunctiveSelection, Selection
from repro.schemes.registry import available_schemes

EMP_DECL = "Emp(name:string[14], dept:string[5], salary:int[6])"

ROWS = [
    ("Montgomery", "HR", 7500),
    ("Smith", "IT", 5200),
    ("Jones", "HR", 7500),
    ("Brown", "SALES", 4100),
    ("Adams", "IT", 6100),
]


@pytest.fixture(scope="module")
def tcp_provider():
    """One TCP provider shared by every remote-transport test in this module."""
    from repro.net import ThreadedTcpServer

    with ThreadedTcpServer() as server:
        yield server


@pytest.fixture(
    params=[
        "in-process",
        "tcp",
        "tcp-async",
        "cluster",
        "in-process+index",
        "tcp+index",
        "tcp-async+index",
        "cluster+index",
    ]
)
def transport(request):
    """Direct provider, a socket (blocking or pipelined), or a 2-shard
    cluster of in-process backends -- each plain and with the encrypted
    inverted index maintained through every operation."""
    return request.param


@pytest.fixture(params=available_schemes())
def db(request, transport, secret_key, rng):
    indexed = transport.endswith("+index")
    base = transport[: -len("+index")] if indexed else transport
    if base == "in-process":
        session = EncryptedDatabase.open(
            secret_key, scheme=request.param, rng=rng, index=indexed
        )
        session.create_table(EMP_DECL, rows=ROWS)
        yield session
        return
    if base == "cluster":
        # The same suite sharded across two backends -- the scatter-gather
        # router must be just as transparent as the socket.
        from repro.outsourcing import OutsourcedDatabaseServer

        session = EncryptedDatabase.open(
            secret_key,
            shards=[OutsourcedDatabaseServer(), OutsourcedDatabaseServer()],
            scheme=request.param,
            rng=rng,
            index=indexed,
        )
        try:
            session.create_table(EMP_DECL, rows=ROWS)
            yield session
        finally:
            session.close()  # shuts the router's scatter pool down
        return
    # The same suite over tcp:// -- the transport must be transparent --
    # both the blocking pooled proxy and the pipelined asyncio proxy.
    provider = request.getfixturevalue("tcp_provider")
    options = [opt for opt, on in (("async=1", base == "tcp-async"),
                                   ("index=1", indexed)) if on]
    suffix = "?" + "&".join(options) if options else ""
    session = EncryptedDatabase.connect(
        f"tcp://127.0.0.1:{provider.port}{suffix}",
        secret_key,
        scheme=request.param,
        rng=rng,
    )
    try:
        session.create_table(EMP_DECL, rows=ROWS)
        yield session
    finally:
        # The module-scoped provider outlives the test: clear its state.
        for name in session.server.relation_names:
            session.server.drop_relation(name)
        session.close()


class TestCrudAcrossAllSchemes:
    def test_select_sql_and_ast(self, db):
        outcome = db.select("SELECT * FROM Emp WHERE dept = 'HR'")
        assert len(outcome.relation) == 2
        outcome = db.select(Selection.equals("dept", "IT"), table="Emp")
        assert len(outcome.relation) == 2
        assert sorted(t["name"] for t in outcome.relation) == ["Adams", "Smith"]

    def test_projection_rows(self, db):
        outcome = db.select("SELECT name, salary FROM Emp WHERE dept = 'IT'")
        assert sorted(outcome.projected_rows) == [("Adams", 6100), ("Smith", 5200)]

    def test_insert_then_select(self, db):
        db.insert("Emp", {"name": "Zoe", "dept": "HR", "salary": 3000})
        outcome = db.select(Selection.equals("name", "Zoe"), table="Emp")
        assert len(outcome.relation) == 1
        assert db.count("Emp") == len(ROWS) + 1

    def test_insert_many(self, db):
        shipped = db.insert_many(
            "Emp", [("A", "OPS", 1), {"name": "B", "dept": "OPS", "salary": 2}]
        )
        assert shipped == 2
        assert len(db.select(Selection.equals("dept", "OPS"), table="Emp").relation) == 2

    def test_delete_by_predicate(self, db):
        deleted = db.delete("SELECT * FROM Emp WHERE dept = 'HR'")
        assert deleted == 2
        assert db.count("Emp") == len(ROWS) - 2
        assert len(db.select(Selection.equals("dept", "HR"), table="Emp").relation) == 0
        # the other departments survived
        assert len(db.select(Selection.equals("dept", "IT"), table="Emp").relation) == 2

    def test_delete_without_matches(self, db):
        assert db.delete(Selection.equals("dept", "LEGAL"), table="Emp") == 0
        assert db.count("Emp") == len(ROWS)

    def test_update_reencrypts_matching_tuples(self, db):
        updated = db.update("SELECT * FROM Emp WHERE name = 'Smith'", {"salary": 9999})
        assert updated == 1
        outcome = db.select(Selection.equals("salary", 9999), table="Emp")
        assert [t["name"] for t in outcome.relation] == ["Smith"]
        assert db.count("Emp") == len(ROWS)

    def test_update_gets_fresh_tuple_ids(self, db):
        before = {t.tuple_id for t in db.server.stored_relation("Emp")}
        db.update(Selection.equals("name", "Brown"), {"salary": 4200}, table="Emp")
        after = {t.tuple_id for t in db.server.stored_relation("Emp")}
        # delete-then-insert: the provider cannot link old and new versions
        assert len(after - before) == 1

    def test_conjunctive_selection(self, db):
        outcome = db.select(
            ConjunctiveSelection.of(("dept", "HR"), ("salary", 7500)), table="Emp"
        )
        assert len(outcome.relation) == 2

    def test_select_many_batches_one_round_trip(self, db):
        outcomes = db.select_many(
            [
                Selection.equals("dept", "HR"),
                Selection.equals("dept", "IT"),
                "SELECT * FROM Emp WHERE dept = 'SALES'",
            ],
            table="Emp",
        )
        assert [len(o.relation) for o in outcomes] == [2, 2, 1]

    def test_retrieve_all_roundtrip(self, db, employee_schema):
        relation = db.retrieve_all("Emp")
        assert len(relation) == len(ROWS)
        assert sorted(t["name"] for t in relation) == sorted(r[0] for r in ROWS)

    def test_indexed_serving_is_o_result(self, db):
        """Indexed sessions answer from the index (examined ~ result size);
        plain sessions scan (examined ~ data size).  Either way the results
        above already proved byte-for-byte equality with the expectation."""
        outcome = db.select("SELECT * FROM Emp WHERE dept = 'HR'")
        assert len(outcome.relation) == 2
        if db.index_active:
            assert outcome.evaluation.examined == 2
        else:
            assert outcome.evaluation is None or (
                outcome.evaluation.examined >= len(ROWS)
            )

    def test_indexed_crud_matches_a_scan_session(self, db, secret_key, rng):
        """Drive CRUD through the (possibly indexed) session, then compare
        every query's result against a plain scanning session attached to
        the very same provider state."""
        db.insert("Emp", {"name": "Zoe", "dept": "HR", "salary": 1})
        db.delete(Selection.equals("name", "Smith"), table="Emp")
        db.update(Selection.equals("name", "Jones"), {"dept": "OPS"}, table="Emp")
        scan = EncryptedDatabase.open(
            secret_key, server=db.server, scheme=db.scheme_name, rng=rng
        )
        scan.attach_table(EMP_DECL)
        for where in (
            Selection.equals("dept", "HR"),
            Selection.equals("dept", "OPS"),
            Selection.equals("name", "Smith"),
            Selection.equals("name", "Zoe"),
        ):
            indexed = db.select(where, table="Emp")
            scanned = scan.select(where, table="Emp")
            assert sorted(t["name"] for t in indexed.relation) == sorted(
                t["name"] for t in scanned.relation
            )


class TestSessionManagement:
    def test_multi_table_routing(self, secret_key):
        db = EncryptedDatabase.open(secret_key)
        db.create_table(EMP_DECL, rows=ROWS)
        db.create_table("Dept(dept:string[5], city:string[8])",
                        rows=[("HR", "Berlin"), ("IT", "Potsdam")])
        assert set(db.tables) == {"Emp", "Dept"}
        assert len(db.select("SELECT * FROM Dept WHERE city = 'Berlin'").relation) == 1
        assert len(db.select("SELECT * FROM Emp WHERE dept = 'HR'").relation) == 2
        with pytest.raises(DatabaseError):
            db.select("SELECT * FROM Nowhere WHERE x = 1")
        with pytest.raises(DatabaseError):
            # AST queries need a table name once several tables exist
            db.select(Selection.equals("dept", "HR"))

    def test_sql_table_mismatch_rejected(self, db):
        with pytest.raises(DatabaseError):
            db.select("SELECT * FROM Emp WHERE dept = 'HR'", table="Other")

    def test_duplicate_create_rejected(self, db):
        with pytest.raises(DatabaseError):
            db.create_table(EMP_DECL)

    def test_drop_table(self, db):
        db.drop_table("Emp")
        assert db.tables == ()
        assert "Emp" not in db.server.relation_names
        with pytest.raises(DatabaseError):
            db.select("SELECT * FROM Emp WHERE dept = 'HR'")

    def test_unknown_update_attribute_rejected(self, db):
        with pytest.raises(DatabaseError):
            db.update(Selection.equals("dept", "HR"), {"bonus": 1}, table="Emp")

    def test_row_arity_mismatch_rejected(self, db):
        with pytest.raises(DatabaseError):
            db.insert("Emp", ("only-one",))

    def test_schema_violations_surface_as_database_errors(self, db):
        with pytest.raises(DatabaseError):
            db.insert("Emp", {"name": "X" * 99, "dept": "HR", "salary": 1})
        with pytest.raises(DatabaseError):
            db.update(Selection.equals("dept", "HR"), {"name": "X" * 99}, table="Emp")

    def test_server_and_storage_are_mutually_exclusive(self, secret_key):
        with pytest.raises(DatabaseError):
            EncryptedDatabase.open(
                secret_key,
                server=OutsourcedDatabaseServer(),
                storage=InMemoryStorageBackend(),
            )

    def test_scheme_aliases_accepted(self, secret_key):
        db = EncryptedDatabase.open(secret_key, scheme="index-sse")
        assert db.scheme_name == "index"


class TestFileBackedSessions:
    def test_tables_survive_a_session_restart(self, tmp_path, secret_key):
        storage = FileStorageBackend(tmp_path / "relations")
        first = EncryptedDatabase.open(secret_key, storage=storage)
        first.create_table(EMP_DECL, rows=ROWS)
        first.delete(Selection.equals("dept", "SALES"), table="Emp")

        # a brand-new server process over the same files, same master key
        reopened = EncryptedDatabase.open(
            secret_key, server=OutsourcedDatabaseServer(storage=FileStorageBackend(tmp_path / "relations"))
        )
        handle = reopened.attach_table(EMP_DECL)
        assert handle.name == "Emp"
        assert reopened.count("Emp") == len(ROWS) - 1
        outcome = reopened.select("SELECT * FROM Emp WHERE dept = 'HR'")
        assert len(outcome.relation) == 2
        reopened.insert("Emp", {"name": "New", "dept": "HR", "salary": 1})
        assert len(reopened.select(Selection.equals("dept", "HR"), table="Emp").relation) == 3

    def test_file_append_keeps_the_count_prefix_consistent(self, tmp_path, secret_key):
        storage = FileStorageBackend(tmp_path)
        db = EncryptedDatabase.open(secret_key, storage=storage)
        db.create_table(EMP_DECL, rows=ROWS[:1])
        # in-place appends (count bump + extend) must stay decodable
        db.insert_many("Emp", [(f"n{i}", "IT", i) for i in range(10)])
        assert len(storage.load("Emp")) == 11
        assert len(db.select(Selection.equals("dept", "IT"), table="Emp").relation) == 10

    def test_create_over_stored_relation_rejected(self, tmp_path, secret_key):
        directory = tmp_path / "relations"
        first = EncryptedDatabase.open(secret_key, storage=FileStorageBackend(directory))
        first.create_table(EMP_DECL, rows=ROWS)
        # a later session must not clobber the persisted ciphertext
        reopened = EncryptedDatabase.open(secret_key, storage=FileStorageBackend(directory))
        with pytest.raises(DatabaseError, match="already stores"):
            reopened.create_table(EMP_DECL)
        assert reopened.attach_table(EMP_DECL).name == "Emp"
        assert reopened.count("Emp") == len(ROWS)

    def test_attach_with_mismatched_schema_rejected(self, tmp_path, secret_key):
        storage = FileStorageBackend(tmp_path)
        db = EncryptedDatabase.open(secret_key, storage=storage)
        db.create_table(EMP_DECL, rows=ROWS)
        other = EncryptedDatabase.open(secret_key, server=db.server)
        with pytest.raises(DatabaseError, match="schema mismatch"):
            other.attach_table("Emp(dept:string[5], name:string[14], salary:int[6])")

    def test_attach_requires_stored_relation(self, tmp_path, secret_key):
        db = EncryptedDatabase.open(secret_key, storage=FileStorageBackend(tmp_path))
        with pytest.raises(DatabaseError):
            db.attach_table(EMP_DECL)

    def test_corrupt_file_rejected(self, tmp_path, secret_key):
        storage = FileStorageBackend(tmp_path)
        db = EncryptedDatabase.open(secret_key, storage=storage)
        db.create_table(EMP_DECL, rows=ROWS)
        path = storage._path("Emp")
        path.write_bytes(path.read_bytes()[:-3])
        with pytest.raises(StorageError):
            storage.load("Emp")


class TestLegacyInterop:
    def test_legacy_client_and_facade_share_a_server(self, secret_key, rng,
                                                     employee_schema, employee_relation,
                                                     swp_dph):
        server = OutsourcedDatabaseServer()
        legacy = OutsourcingClient(swp_dph, server, relation_name="Legacy")
        legacy.outsource(employee_relation)

        db = EncryptedDatabase.open(secret_key, server=server, rng=rng)
        db.create_table(EMP_DECL, rows=ROWS)

        # both paths keep working side by side
        assert len(legacy.select(Selection.equals("dept", "HR")).relation) == 2
        assert len(db.select("SELECT * FROM Emp WHERE dept = 'HR'").relation) == 2
        assert set(server.relation_names) == {"Legacy", "Emp"}

    def test_v1_only_server_still_selects(self, secret_key):
        class V1OnlyServer(OutsourcedDatabaseServer):
            SUPPORTED_PROTOCOL_VERSIONS = (PROTOCOL_V1,)

        db = EncryptedDatabase.open(secret_key, server=V1OnlyServer())
        assert db.protocol_version == PROTOCOL_V1
        db.create_table(EMP_DECL, rows=ROWS)
        db.insert("Emp", {"name": "Zoe", "dept": "HR", "salary": 1})
        assert len(db.select("SELECT * FROM Emp WHERE dept = 'HR'").relation) == 3
        with pytest.raises(DatabaseError, match="protocol version 2"):
            db.delete(Selection.equals("dept", "HR"), table="Emp")
        with pytest.raises(DatabaseError, match="protocol version 2"):
            db.update(Selection.equals("dept", "HR"), {"salary": 2}, table="Emp")
        with pytest.raises(DatabaseError, match="protocol version 2"):
            db.select_many([Selection.equals("dept", "HR")], table="Emp")
