"""Integration tests: the full paper narrative, end to end.

These tests tie all subsystems together in the order the paper presents them:
outsource an employee database with the Section-3 construction, run SQL exact
selects through the untrusted server, confirm Definition 1.1's homomorphism
property, and confirm the security landscape (secure at q = 0, broken at
q > 0, baselines broken even at q = 0).
"""

from __future__ import annotations

import pytest

from repro import SearchableSelectDph, SecretKey
from repro.core import check_homomorphism
from repro.crypto.rng import DeterministicRng
from repro.outsourcing import OutsourcedDatabaseServer, OutsourcingClient
from repro.relational import Relation, RelationSchema, Selection, parse_sql
from repro.schemes import BucketizationConfig, HacigumusDph
from repro.security import (
    AdversaryModel,
    DphIndistinguishabilityGame,
    GenericActiveAdversary,
    IndistinguishabilityGame,
)
from repro.security.attacks import (
    SalaryPairAdversary,
    run_active_query_attack,
    run_hospital_inference,
)
from repro.workloads import EmployeeWorkload, HospitalWorkload


class TestPaperSection3Example:
    """The worked example of Section 3: Emp(name, dept, salary)."""

    def test_montgomery_example_end_to_end(self):
        schema = RelationSchema.parse("Emp(name:string[10], dept:string[5], salary:int[6])")
        relation = Relation.from_rows(
            schema,
            [("Montgomery", "HR", 7500), ("Smith", "IT", 5200), ("Weaver", "HR", 6800)],
        )
        dph = SearchableSelectDph(schema, SecretKey.generate(rng=DeterministicRng(1)),
                                  rng=DeterministicRng(2))
        server = OutsourcedDatabaseServer()
        client = OutsourcingClient(dph, server)
        client.outsource(relation)

        # sigma_{name:"Montgomery"}  |->  phi_{"MontgomeryN"}
        outcome = client.select("SELECT * FROM Emp WHERE name = 'Montgomery'")
        assert len(outcome.relation) == 1
        assert outcome.relation.tuples[0].value("salary") == 7500

        # The provider never sees plaintext.
        stored = server.stored_relation("Emp")
        leaked = b"".join(
            t.payload + b"".join(t.search_fields) + t.metadata for t in stored
        )
        assert b"Montgomery" not in leaked and b"HR" not in leaked

    def test_word_length_matches_paper_rule(self):
        """Word length = longest attribute value + attribute identifier length."""
        schema = RelationSchema.parse("Emp(name:string[9], dept:string[5], salary:int[6])")
        dph = SearchableSelectDph(schema, SecretKey.generate())
        assert dph.word_length == 9 + 1


class TestDefinitionOneHomomorphism:
    """Definition 1.1's property over a realistic workload, for every scheme."""

    def test_all_schemes_satisfy_the_property(self, all_schemes):
        workload = EmployeeWorkload.generate(60, seed=9)
        queries = [Selection.equals("dept", d) for d in workload.departments[:4]]
        queries += [workload.name_query(i) for i in (0, 17, 59)]
        for scheme in all_schemes:
            report = check_homomorphism(scheme, workload.relation, queries)
            assert report.holds, f"homomorphism failed for {scheme.name}"


class TestSecurityLandscape:
    """The paper's overall message, reproduced as one test per claim."""

    @staticmethod
    def _swp_factory(schema, rng):
        return SearchableSelectDph(schema, SecretKey.generate(rng=rng), rng=rng)

    @staticmethod
    def _bucket_factory(schema, rng):
        config = BucketizationConfig.uniform(schema, num_buckets=16, minimum=0, maximum=10000)
        return HacigumusDph(schema, SecretKey.generate(rng=rng), config=config, rng=rng)

    def test_baselines_lose_even_at_q_zero(self):
        result = IndistinguishabilityGame(self._bucket_factory).run(
            SalaryPairAdversary(), trials=50, seed=31
        )
        assert result.success_rate >= 0.95

    def test_construction_wins_at_q_zero(self):
        result = IndistinguishabilityGame(self._swp_factory).run(
            SalaryPairAdversary(), trials=60, seed=32
        )
        assert result.secure_against(threshold=0.35)

    def test_everything_loses_at_q_positive(self):
        game = DphIndistinguishabilityGame(
            self._swp_factory, query_budget=1, adversary_model=AdversaryModel.ACTIVE
        )
        result = game.run(GenericActiveAdversary(table_size=8), trials=30, seed=33)
        assert result.success_rate >= 0.95

    def test_inference_attacks_extract_sensitive_facts(self):
        workload = HospitalWorkload.generate(500, target_name="John", seed=34)
        dph = SearchableSelectDph(workload.schema, SecretKey.generate(), backend="index")
        inference = run_hospital_inference(dph, workload)
        assert inference.identification_correct
        assert inference.max_absolute_error < 0.02
        john = run_active_query_attack(dph, workload)
        assert john.fully_successful


class TestSqlFrontendIntegration:
    def test_sql_and_ast_paths_agree(self, swp_dph, employee_relation):
        server = OutsourcedDatabaseServer()
        client = OutsourcingClient(swp_dph, server)
        client.outsource(employee_relation)
        via_sql = client.select("SELECT * FROM Emp WHERE dept = 'HR'")
        via_ast = client.select(Selection.equals("dept", "HR"))
        assert via_sql.relation == via_ast.relation

    def test_parse_sql_result_round_trips_through_scheme(self, swp_dph):
        parsed = parse_sql("SELECT * FROM Emp WHERE salary = 7500", swp_dph.schema)
        encrypted = swp_dph.encrypt_query(parsed.query)
        assert len(encrypted.tokens) == 1
