"""Tests for adversary plumbing, advantage statistics and calibration attacks."""

from __future__ import annotations

import pytest

from repro.analysis import BinomialEstimate, hoeffding_bound, mean_and_std, wilson_interval
from repro.analysis.reporting import ExperimentTable, format_value
from repro.analysis.stats import trials_for_advantage
from repro.core import SearchableSelectDph
from repro.security.adversaries import ChallengeView, ObservedQuery, SecurityError
from repro.security.attacks import CiphertextSizeAdversary, paper_salary_tables
from repro.security.attacks.equality_pattern import EqualityPatternAdversary
from repro.security.attacks.statistical import KnownValueAdversary
from repro.relational import Relation, Selection


class TestObservedQuery:
    def test_result_size_and_ids(self, swp_dph, employee_relation):
        encrypted = swp_dph.encrypt_relation(employee_relation)
        evaluator = swp_dph.server_evaluator()
        encrypted_query = swp_dph.encrypt_query(Selection.equals("dept", "HR"))
        result = evaluator.evaluate(encrypted_query, encrypted)
        observed = ObservedQuery(encrypted_query=encrypted_query, result=result.matching)
        assert observed.result_size == 2
        assert len(observed.result_tuple_ids()) == 2

    def test_challenge_view_evaluate(self, swp_dph, employee_relation):
        encrypted = swp_dph.encrypt_relation(employee_relation)
        view = ChallengeView(
            schema=employee_relation.schema,
            encrypted_relation=encrypted,
            evaluator=swp_dph.server_evaluator(),
        )
        observed = view.evaluate(swp_dph.encrypt_query(Selection.equals("dept", "IT")))
        assert observed.result_size == 2


class TestEqualityPatternAdversaryInternals:
    def test_target_positions_are_the_repeating_columns(self):
        adversary = EqualityPatternAdversary(*paper_salary_tables())
        # position 1 is the salary column in the paper's schema (id, salary).
        assert adversary._target_positions == (1,)

    def test_falls_back_to_all_positions_when_tables_do_not_differ(self):
        table_1, _ = paper_salary_tables()
        adversary = EqualityPatternAdversary(table_1, table_1)
        assert adversary._target_positions == (0, 1)

    def test_schema_property(self):
        adversary = EqualityPatternAdversary(*paper_salary_tables())
        assert adversary.schema.name == "salaries"


class TestCalibrationAdversaries:
    def test_known_value_requires_a_distinguishing_value(self):
        table_1, _ = paper_salary_tables()
        with pytest.raises(SecurityError):
            KnownValueAdversary(table_1, table_1, "salary")

    def test_ciphertext_size_adversary_returns_valid_guesses(self, swp_dph):
        table_1, table_2 = paper_salary_tables()
        adversary = CiphertextSizeAdversary(table_1, table_2)
        # Build views for both tables and check guesses stay in {1, 2}.
        for table in (table_1, table_2):
            dph = SearchableSelectDph(table.schema, b"k" * 32)
            view = ChallengeView(
                schema=table.schema,
                encrypted_relation=dph.encrypt_relation(table),
                evaluator=dph.server_evaluator(),
            )
            assert adversary.guess(view) in (1, 2)


class TestAdvantageStatistics:
    def test_wilson_interval_basic_properties(self):
        low, high = wilson_interval(50, 100)
        assert 0.4 < low < 0.5 < high < 0.6
        assert wilson_interval(0, 0) == (0.0, 1.0)
        assert wilson_interval(0, 100)[0] == 0.0
        assert wilson_interval(100, 100)[1] == 1.0

    def test_wilson_interval_input_validation(self):
        with pytest.raises(ValueError):
            wilson_interval(5, 3)
        with pytest.raises(ValueError):
            wilson_interval(1, 10, confidence=1.5)

    def test_wider_confidence_gives_wider_interval(self):
        narrow = wilson_interval(60, 100, confidence=0.9)
        wide = wilson_interval(60, 100, confidence=0.99)
        assert wide[0] < narrow[0] and wide[1] > narrow[1]

    def test_hoeffding_bound(self):
        assert hoeffding_bound(0, 0.1) == 1.0
        assert hoeffding_bound(1000, 0.1) < 0.01
        with pytest.raises(ValueError):
            hoeffding_bound(-1, 0.1)

    def test_trials_for_advantage(self):
        assert trials_for_advantage(0.1) >= 150
        with pytest.raises(ValueError):
            trials_for_advantage(0.0)

    def test_mean_and_std(self):
        mean, std = mean_and_std([1.0, 2.0, 3.0])
        assert mean == pytest.approx(2.0)
        assert std == pytest.approx(0.8164965, rel=1e-4)
        with pytest.raises(ValueError):
            mean_and_std([])

    def test_binomial_estimate_advantage(self):
        estimate = BinomialEstimate(successes=95, trials=100)
        assert estimate.proportion == pytest.approx(0.95)
        assert estimate.advantage == pytest.approx(0.9)
        assert estimate.is_overwhelming(threshold=0.7)
        assert not estimate.is_negligible()

    def test_binomial_estimate_negligible(self):
        estimate = BinomialEstimate(successes=51, trials=100)
        assert estimate.is_negligible()
        assert not estimate.is_overwhelming()

    def test_zero_trials(self):
        estimate = BinomialEstimate(successes=0, trials=0)
        assert estimate.proportion == 0.0
        assert estimate.is_negligible()


class TestReporting:
    def test_table_rendering(self):
        table = ExperimentTable("demo", ["scheme", "advantage", "broken"])
        table.add_row("swp", 0.01234, False)
        table.add_row("bucketization", 1.0, True)
        rendered = table.render()
        assert "demo" in rendered
        assert "bucketization" in rendered
        assert "yes" in rendered and "no" in rendered
        assert str(table) == rendered

    def test_row_width_validation(self):
        table = ExperimentTable("demo", ["a", "b"])
        with pytest.raises(ValueError):
            table.add_row("only-one")

    def test_format_value(self):
        assert format_value(True) == "yes"
        assert format_value(0.00001) == "1.00e-05"
        assert format_value(0.5) == "0.500"
        assert format_value(7) == "7"
