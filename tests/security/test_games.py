"""Tests for the indistinguishability games (Definitions 1.2 and 2.1)."""

from __future__ import annotations

import pytest

from repro.core import SearchableSelectDph
from repro.crypto.keys import SecretKey
from repro.relational import Relation, Selection
from repro.schemes import PlaintextDph
from repro.security import (
    AdversaryModel,
    DphIndistinguishabilityGame,
    IndistinguishabilityGame,
    PassiveAdversary,
    QueryEncryptionOracle,
    SecurityError,
)
from repro.security.adversaries import OracleBudgetExceeded
from repro.security.attacks import RandomGuessAdversary, paper_salary_tables


def swp_factory(schema, rng):
    return SearchableSelectDph(schema, SecretKey.generate(rng=rng), backend="swp", rng=rng)


def plaintext_factory(schema, rng):
    return PlaintextDph(schema, rng=rng)


class _ConstantGuessAdversary(PassiveAdversary):
    """Always answers the same; success probability must be exactly 1/2 on average."""

    name = "constant"

    def __init__(self, guess: int = 1):
        self._tables = paper_salary_tables()
        self._guess = guess

    def choose_tables(self, schema=None):
        return self._tables

    def guess(self, view, oracle=None):
        return self._guess


class _BadGuessAdversary(_ConstantGuessAdversary):
    def guess(self, view, oracle=None):
        return 7  # invalid


class _MismatchedTablesAdversary(_ConstantGuessAdversary):
    def choose_tables(self, schema=None):
        table_1, table_2 = paper_salary_tables()
        smaller = Relation(table_2.schema, table_2.tuples[:1])
        return table_1, smaller


class TestIndGame:
    def test_result_bookkeeping(self):
        game = IndistinguishabilityGame(swp_factory, "swp")
        result = game.run(_ConstantGuessAdversary(), trials=20, seed=1)
        assert result.trials == 20
        assert 0 <= result.wins <= 20
        assert result.scheme_name == "swp"
        assert result.game_name.startswith("IND")

    def test_constant_adversary_has_no_advantage(self):
        game = IndistinguishabilityGame(swp_factory, "swp")
        result = game.run(_ConstantGuessAdversary(), trials=120, seed=2)
        assert result.secure_against(threshold=0.35)

    def test_random_adversary_has_no_advantage(self):
        table_1, table_2 = paper_salary_tables()
        game = IndistinguishabilityGame(swp_factory, "swp")
        result = game.run(RandomGuessAdversary(table_1, table_2), trials=120, seed=3)
        assert result.secure_against(threshold=0.35)

    def test_invalid_guess_rejected(self):
        game = IndistinguishabilityGame(swp_factory, "swp")
        with pytest.raises(SecurityError):
            game.run(_BadGuessAdversary(), trials=1, seed=4)

    def test_unequal_table_sizes_rejected(self):
        game = IndistinguishabilityGame(swp_factory, "swp")
        with pytest.raises(SecurityError):
            game.run(_MismatchedTablesAdversary(), trials=1, seed=5)

    def test_runs_are_reproducible(self):
        game = IndistinguishabilityGame(swp_factory, "swp")
        adversary = _ConstantGuessAdversary()
        first = game.run(adversary, trials=30, seed=6)
        second = game.run(adversary, trials=30, seed=6)
        assert first.wins == second.wins


class TestDphGame:
    def test_passive_game_requires_workload_when_q_positive(self):
        with pytest.raises(SecurityError):
            DphIndistinguishabilityGame(swp_factory, query_budget=1)

    def test_negative_budget_rejected(self):
        with pytest.raises(SecurityError):
            DphIndistinguishabilityGame(swp_factory, query_budget=-1,
                                        adversary_model=AdversaryModel.ACTIVE)

    def test_game_name_mentions_budget_and_model(self):
        game = DphIndistinguishabilityGame(
            swp_factory, query_budget=3, adversary_model=AdversaryModel.ACTIVE
        )
        assert "q=3" in game.name and "active" in game.name
        assert game.query_budget == 3

    def test_passive_game_with_zero_budget_reduces_to_ind(self):
        game = DphIndistinguishabilityGame(swp_factory, query_budget=0)
        result = game.run(_ConstantGuessAdversary(), trials=40, seed=7)
        assert result.secure_against(threshold=0.45)

    def test_passive_workload_queries_are_observed(self):
        observed_counts = []

        class _CountingAdversary(_ConstantGuessAdversary):
            def guess(self, view, oracle=None):
                observed_counts.append(len(view.observed_queries))
                return 1

        def workload(chosen, rng):
            return [Selection.equals("salary", 4900), Selection.equals("salary", 1200)]

        game = DphIndistinguishabilityGame(
            swp_factory, query_budget=2, query_workload=workload
        )
        game.run(_CountingAdversary(), trials=3, seed=8)
        assert observed_counts == [2, 2, 2]

    def test_active_game_provides_oracle_with_budget(self):
        budgets = []

        class _OracleInspectingAdversary(_ConstantGuessAdversary):
            def guess(self, view, oracle=None):
                budgets.append(oracle.budget)
                oracle.encrypt_query(Selection.equals("salary", 4900))
                return 1

        game = DphIndistinguishabilityGame(
            swp_factory, query_budget=1, adversary_model=AdversaryModel.ACTIVE
        )
        game.run(_OracleInspectingAdversary(), trials=2, seed=9)
        assert budgets == [1, 1]


class TestQueryEncryptionOracle:
    def test_budget_enforced(self, employee_schema, secret_key, rng):
        dph = SearchableSelectDph(employee_schema, secret_key, rng=rng)
        oracle = QueryEncryptionOracle(dph, budget=2)
        oracle.encrypt_query(Selection.equals("dept", "HR"))
        oracle.encrypt_query(Selection.equals("dept", "IT"))
        assert oracle.used == 2
        assert oracle.remaining == 0
        with pytest.raises(OracleBudgetExceeded):
            oracle.encrypt_query(Selection.equals("dept", "OPS"))

    def test_negative_budget_rejected(self, swp_dph):
        with pytest.raises(SecurityError):
            QueryEncryptionOracle(swp_dph, budget=-1)
