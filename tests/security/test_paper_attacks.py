"""Tests reproducing the paper's attacks (Sections 1 and 2).

These are the library's headline results:

* the Section-1 salary-pair attack breaks the deterministic baselines but not
  the Section-3 construction;
* Theorem 2.1 adversaries break *every* scheme as soon as q > 0;
* the Section-2 hospital inference and "John" attacks succeed against the
  construction despite its q = 0 security.
"""

from __future__ import annotations

import pytest

from repro.core import SearchableSelectDph
from repro.crypto.keys import SecretKey
from repro.schemes import (
    BucketizationConfig,
    DamianiDph,
    DeterministicDph,
    HacigumusDph,
    PlaintextDph,
)
from repro.security import (
    AdversaryModel,
    DphIndistinguishabilityGame,
    GenericActiveAdversary,
    IndistinguishabilityGame,
    ResultSizeAdversary,
)
from repro.security.attacks import (
    KnownValueAdversary,
    SalaryPairAdversary,
    paper_salary_tables,
    run_active_query_attack,
    run_hospital_inference,
)
from repro.workloads import HospitalWorkload

TRIALS = 60


def swp_factory(schema, rng):
    return SearchableSelectDph(schema, SecretKey.generate(rng=rng), backend="swp", rng=rng)


def index_factory(schema, rng):
    return SearchableSelectDph(schema, SecretKey.generate(rng=rng), backend="index", rng=rng)


def bucket_factory(schema, rng):
    config = BucketizationConfig.uniform(schema, num_buckets=16, minimum=0, maximum=10000)
    return HacigumusDph(schema, SecretKey.generate(rng=rng), config=config, rng=rng)


def damiani_factory(schema, rng):
    return DamianiDph(schema, SecretKey.generate(rng=rng), num_hash_values=256, rng=rng)


def deterministic_factory(schema, rng):
    return DeterministicDph(schema, SecretKey.generate(rng=rng), rng=rng)


class TestSalaryPairAttack:
    """Section 1: the two-salary-table distinguishing attack."""

    @pytest.mark.parametrize(
        "factory", [bucket_factory, damiani_factory, deterministic_factory],
        ids=["bucketization", "damiani", "deterministic"],
    )
    def test_breaks_deterministic_baselines(self, factory):
        game = IndistinguishabilityGame(factory)
        result = game.run(SalaryPairAdversary(), trials=TRIALS, seed=10)
        assert result.success_rate >= 0.95

    @pytest.mark.parametrize("factory", [swp_factory, index_factory], ids=["swp", "index"])
    def test_fails_against_the_construction(self, factory):
        game = IndistinguishabilityGame(factory)
        result = game.run(SalaryPairAdversary(), trials=TRIALS, seed=11)
        assert result.secure_against(threshold=0.35)

    def test_known_value_adversary_only_breaks_plaintext(self):
        table_1, table_2 = paper_salary_tables()
        adversary = KnownValueAdversary(table_1, table_2, "salary")
        plain = IndistinguishabilityGame(lambda s, r: PlaintextDph(s, rng=r))
        assert plain.run(adversary, trials=40, seed=12).success_rate == 1.0
        swp = IndistinguishabilityGame(swp_factory)
        assert swp.run(adversary, trials=60, seed=13).secure_against(threshold=0.35)


class TestTheorem21:
    """Any database PH loses the Definition 2.1 game once q > 0."""

    @pytest.mark.parametrize(
        "factory",
        [swp_factory, index_factory, bucket_factory, deterministic_factory],
        ids=["swp", "index", "bucketization", "deterministic"],
    )
    def test_active_adversary_wins_with_one_query(self, factory):
        game = DphIndistinguishabilityGame(
            factory, query_budget=1, adversary_model=AdversaryModel.ACTIVE
        )
        result = game.run(GenericActiveAdversary(table_size=8), trials=40, seed=14)
        assert result.success_rate >= 0.95

    @pytest.mark.parametrize("factory", [swp_factory, bucket_factory], ids=["swp", "bucketization"])
    def test_passive_adversary_wins_from_result_sizes(self, factory):
        game = DphIndistinguishabilityGame(
            factory,
            query_budget=1,
            adversary_model=AdversaryModel.PASSIVE,
            query_workload=ResultSizeAdversary.workload,
        )
        result = game.run(ResultSizeAdversary(table_size=8), trials=40, seed=15)
        assert result.success_rate >= 0.95

    def test_active_adversary_powerless_at_q_zero(self):
        """The relaxation the paper's construction targets: q = 0."""
        game = DphIndistinguishabilityGame(
            swp_factory, query_budget=0, adversary_model=AdversaryModel.ACTIVE
        )
        result = game.run(GenericActiveAdversary(table_size=8), trials=80, seed=16)
        assert result.secure_against(threshold=0.3)


class TestHospitalInference:
    """Section 2: passive inference of per-hospital fatality ratios."""

    @pytest.fixture(scope="class")
    def workload(self):
        return HospitalWorkload.generate(600, target_name="John", seed=21)

    @pytest.mark.parametrize("backend", ["swp", "index"])
    def test_eve_recovers_fatality_ratios(self, workload, backend):
        dph = SearchableSelectDph(
            workload.schema, SecretKey.generate(), backend=backend
        )
        result = run_hospital_inference(dph, workload)
        assert result.identification_correct
        assert result.max_absolute_error < 0.02

    def test_estimates_match_ground_truth_exactly_without_false_positives(self, workload):
        dph = SearchableSelectDph(workload.schema, SecretKey.generate(), backend="index")
        result = run_hospital_inference(dph, workload)
        for hospital in (1, 2, 3):
            assert result.estimated_fatality[hospital] == pytest.approx(
                result.true_fatality[hospital]
            )

    def test_ground_truth_marginals_are_plausible(self, workload):
        sizes = [len(workload.relation.select_equal("hospital", h)) for h in (1, 2, 3)]
        assert sizes[0] < sizes[1] < sizes[2]


class TestActiveJohnAttack:
    """Section 2: locating a known patient with a handful of oracle queries."""

    @pytest.fixture(scope="class")
    def workload(self):
        return HospitalWorkload.generate(400, target_name="John", seed=22)

    @pytest.mark.parametrize("backend", ["swp", "index"])
    def test_attack_succeeds_against_the_construction(self, workload, backend):
        dph = SearchableSelectDph(workload.schema, SecretKey.generate(), backend=backend)
        result = run_active_query_attack(dph, workload)
        assert result.hospital_correct
        assert result.outcome_correct
        assert result.oracle_queries_used <= 6

    def test_attack_requires_a_planted_target(self):
        workload = HospitalWorkload.generate(50, seed=23)  # no John
        dph = SearchableSelectDph(workload.schema, SecretKey.generate())
        with pytest.raises(ValueError):
            run_active_query_attack(dph, workload)

    def test_small_budget_still_finds_hospital(self, workload):
        dph = SearchableSelectDph(workload.schema, SecretKey.generate(), backend="index")
        result = run_active_query_attack(dph, workload, oracle_budget=4)
        assert result.hospital_correct
        assert result.oracle_queries_used <= 4
