"""Tests for the frequency-analysis attack on deterministic searchable fields."""

from __future__ import annotations

import pytest

from repro.core import SearchableSelectDph
from repro.crypto.keys import SecretKey
from repro.crypto.rng import DeterministicRng
from repro.schemes import DeterministicDph, HacigumusDph, PlaintextDph
from repro.security.attacks import run_frequency_attack
from repro.workloads import EmployeeWorkload


@pytest.fixture(scope="module")
def workload():
    # Strong Zipf skew so the frequency ranking is informative.
    return EmployeeWorkload.generate(400, department_skew=1.6, seed=31)


class TestFrequencyAttackOnDeterministicSchemes:
    def test_recovers_most_departments_from_deterministic_fields(self, workload):
        dph = DeterministicDph(
            workload.schema, SecretKey.generate(rng=DeterministicRng(1)), rng=DeterministicRng(2)
        )
        result = run_frequency_attack(dph, workload.relation, "dept")
        assert result.recovery_rate > 0.6
        assert result.distinct_fields == len(workload.relation.distinct_values("dept"))

    def test_recovers_departments_from_bucket_labels(self, workload):
        dph = HacigumusDph(
            workload.schema, SecretKey.generate(rng=DeterministicRng(3)), rng=DeterministicRng(4)
        )
        result = run_frequency_attack(dph, workload.relation, "dept")
        # Bucket collisions between strings can blur the ranking, but the most
        # popular departments still dominate their buckets.
        assert result.recovery_rate > 0.4

    def test_plaintext_trivially_recovered(self, workload):
        dph = PlaintextDph(workload.schema, rng=DeterministicRng(5))
        result = run_frequency_attack(dph, workload.relation, "dept")
        assert result.recovery_rate > 0.6


class TestFrequencyAttackOnTheConstruction:
    def test_randomized_fields_defeat_the_attack(self, workload):
        dph = SearchableSelectDph(
            workload.schema, SecretKey.generate(rng=DeterministicRng(6)),
            backend="swp", rng=DeterministicRng(7),
        )
        result = run_frequency_attack(dph, workload.relation, "dept")
        # Every field value is unique, so rank matching recovers essentially
        # nothing beyond coincidence.
        assert result.distinct_fields == len(workload.relation)
        assert result.recovery_rate < 0.2


class TestFrequencyAttackMechanics:
    def test_explicit_prior_is_respected(self, workload):
        dph = DeterministicDph(
            workload.schema, SecretKey.generate(rng=DeterministicRng(8)), rng=DeterministicRng(9)
        )
        # A deliberately wrong prior (uniform over two fake values) recovers nothing.
        result = run_frequency_attack(
            dph, workload.relation, "dept", value_prior={"X": 0.5, "Y": 0.5}
        )
        assert result.recovery_rate == 0.0

    def test_reuses_a_precomputed_encryption(self, workload):
        dph = DeterministicDph(
            workload.schema, SecretKey.generate(rng=DeterministicRng(10)), rng=DeterministicRng(11)
        )
        encrypted = dph.encrypt_relation(workload.relation)
        result = run_frequency_attack(
            dph, workload.relation, "dept", encrypted_relation=encrypted
        )
        assert result.total_tuples == len(workload.relation)

    def test_mismatched_encryption_rejected(self, workload):
        dph = DeterministicDph(
            workload.schema, SecretKey.generate(rng=DeterministicRng(12)), rng=DeterministicRng(13)
        )
        truncated = dph.encrypt_relation(workload.relation)
        truncated = type(truncated)(
            schema=truncated.schema, encrypted_tuples=truncated.encrypted_tuples[:10]
        )
        with pytest.raises(ValueError):
            run_frequency_attack(
                dph, workload.relation, "dept", encrypted_relation=truncated
            )

    def test_empty_relation(self, workload):
        from repro.relational import Relation

        dph = DeterministicDph(
            workload.schema, SecretKey.generate(rng=DeterministicRng(14)), rng=DeterministicRng(15)
        )
        empty = Relation(workload.schema)
        result = run_frequency_attack(dph, empty, "dept", value_prior={"HR": 1.0})
        assert result.recovery_rate == 0.0
        assert result.total_tuples == 0
