"""Tests for the query AST and the plaintext engine."""

from __future__ import annotations

import pytest

from repro.relational.engine import PlaintextEngine, evaluate
from repro.relational.errors import QueryError
from repro.relational.query import (
    ConjunctiveSelection,
    EqualityPredicate,
    Projection,
    Selection,
    full_relation_scan,
    selection_predicates,
)
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, RelationSchema


@pytest.fixture
def schema():
    return RelationSchema(
        "Emp",
        [Attribute.string("name", 10), Attribute.string("dept", 5), Attribute.integer("salary", 6)],
    )


@pytest.fixture
def relation(schema):
    return Relation.from_rows(
        schema,
        [
            ("Ada", "IT", 900),
            ("Bob", "HR", 800),
            ("Cid", "IT", 700),
            ("Dee", "IT", 900),
        ],
    )


class TestQueryAst:
    def test_selection_shorthand(self):
        query = Selection.equals("dept", "IT")
        assert query.attribute == "dept"
        assert query.value == "IT"
        assert query.predicates() == (EqualityPredicate("dept", "IT"),)

    def test_selection_validation(self, schema):
        Selection.equals("dept", "IT").validate(schema)
        with pytest.raises(QueryError):
            Selection.equals("nope", "IT").validate(schema)
        with pytest.raises(QueryError):
            Selection.equals("salary", "not-an-int").validate(schema)

    def test_conjunction_construction(self):
        query = ConjunctiveSelection.of(("dept", "IT"), ("salary", 900))
        assert len(query.predicates()) == 2

    def test_conjunction_rejects_empty_or_repeated_attributes(self):
        with pytest.raises(QueryError):
            ConjunctiveSelection(())
        with pytest.raises(QueryError):
            ConjunctiveSelection.of(("dept", "IT"), ("dept", "HR"))

    def test_projection_validation(self, schema):
        query = Projection(Selection.equals("dept", "IT"), ("name",))
        query.validate(schema)
        with pytest.raises(QueryError):
            Projection(Selection.equals("dept", "IT"), ("nope",)).validate(schema)

    def test_selection_predicates_helper(self):
        selection = Selection.equals("dept", "IT")
        conjunction = ConjunctiveSelection.of(("dept", "IT"), ("salary", 1))
        projection = Projection(conjunction, ("name",))
        assert selection_predicates(selection) == selection.predicates()
        assert selection_predicates(projection) == conjunction.predicates()
        with pytest.raises(QueryError):
            selection_predicates("not a query")  # type: ignore[arg-type]

    def test_predicate_matches(self, schema, relation):
        predicate = EqualityPredicate("dept", "IT")
        assert predicate.matches(relation.tuples[0])
        assert not predicate.matches(relation.tuples[1])

    def test_reprs(self):
        assert "dept" in repr(Selection.equals("dept", "IT"))
        assert "AND" in repr(ConjunctiveSelection.of(("a", 1), ("b", 2)))
        assert "π" in repr(Projection(Selection.equals("a", 1), ("x",)))


class TestPlaintextEngine:
    def test_selection(self, relation):
        result = evaluate(Selection.equals("dept", "IT"), relation)
        assert isinstance(result, Relation)
        assert len(result) == 3

    def test_empty_selection(self, relation):
        assert len(evaluate(Selection.equals("dept", "LEGAL"), relation)) == 0

    def test_conjunction(self, relation):
        result = evaluate(ConjunctiveSelection.of(("dept", "IT"), ("salary", 900)), relation)
        assert len(result) == 2
        assert all(t.value("salary") == 900 for t in result)

    def test_projection_of_selection(self, relation):
        rows = evaluate(Projection(Selection.equals("dept", "IT"), ("name",)), relation)
        assert sorted(rows) == [("Ada",), ("Cid",), ("Dee",)]

    def test_projection_star(self, relation):
        rows = evaluate(Projection(Selection.equals("dept", "HR"), ()), relation)
        assert rows == [("Bob", "HR", 800)]

    def test_unknown_attribute_rejected(self, relation):
        with pytest.raises(QueryError):
            evaluate(Selection.equals("nope", 1), relation)

    def test_unsupported_node_rejected(self, relation):
        engine = PlaintextEngine()
        with pytest.raises(QueryError):
            engine.execute("garbage", relation)  # type: ignore[arg-type]

    def test_nested_projection_rejected(self, relation):
        nested = Projection(Projection(Selection.equals("dept", "IT"), ("name",)), ("name",))
        with pytest.raises(QueryError):
            evaluate(nested, relation)

    def test_full_relation_scan_helper(self, relation):
        copy = full_relation_scan(relation)
        assert copy == relation
        assert copy is not relation
