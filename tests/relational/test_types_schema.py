"""Tests for attribute types and relation schemas."""

from __future__ import annotations

import pytest

from repro.relational.errors import SchemaError
from repro.relational.schema import Attribute, RelationSchema
from repro.relational.types import AttributeType


class TestAttributeType:
    def test_string_validation(self):
        AttributeType.STRING.validate("hello", 10)
        with pytest.raises(SchemaError):
            AttributeType.STRING.validate("too long value", 5)
        with pytest.raises(SchemaError):
            AttributeType.STRING.validate(123, 5)
        with pytest.raises(SchemaError):
            AttributeType.STRING.validate("pad#ding", 10)
        with pytest.raises(SchemaError):
            AttributeType.STRING.validate("münchen", 10)

    def test_integer_validation(self):
        AttributeType.INTEGER.validate(7500, 6)
        AttributeType.INTEGER.validate(-42, 6)
        with pytest.raises(SchemaError):
            AttributeType.INTEGER.validate(10**7, 6)
        with pytest.raises(SchemaError):
            AttributeType.INTEGER.validate("7500", 6)
        with pytest.raises(SchemaError):
            AttributeType.INTEGER.validate(True, 6)

    def test_parse_literal(self):
        assert AttributeType.INTEGER.parse_literal("42") == 42
        assert AttributeType.STRING.parse_literal("abc") == "abc"
        with pytest.raises(SchemaError):
            AttributeType.INTEGER.parse_literal("not-an-int")

    def test_from_declaration(self):
        assert AttributeType.from_declaration("string[9]") == (AttributeType.STRING, 9)
        assert AttributeType.from_declaration("int") == (AttributeType.INTEGER, 12)
        assert AttributeType.from_declaration("int[4]") == (AttributeType.INTEGER, 4)
        with pytest.raises(SchemaError):
            AttributeType.from_declaration("string")  # width required
        with pytest.raises(SchemaError):
            AttributeType.from_declaration("blob[4]")
        with pytest.raises(SchemaError):
            AttributeType.from_declaration("string[abc]")
        with pytest.raises(SchemaError):
            AttributeType.from_declaration("string[0]")


class TestAttribute:
    def test_shorthands(self):
        name = Attribute.string("name", 9)
        salary = Attribute.integer("salary")
        assert name.attribute_type is AttributeType.STRING
        assert salary.attribute_type is AttributeType.INTEGER

    def test_validation(self):
        with pytest.raises(SchemaError):
            Attribute.string("", 5)
        with pytest.raises(SchemaError):
            Attribute.string("bad name!", 5)
        with pytest.raises(SchemaError):
            Attribute("a", AttributeType.STRING, 0)
        with pytest.raises(SchemaError):
            Attribute("a", AttributeType.STRING, 5, identifier="AB")

    def test_validate_value_delegates_to_type(self):
        attribute = Attribute.string("name", 4)
        attribute.validate_value("abcd")
        with pytest.raises(SchemaError):
            attribute.validate_value("abcde")


class TestRelationSchema:
    def test_paper_example_schema(self):
        schema = RelationSchema(
            "Emp",
            [Attribute.string("name", 9), Attribute.string("dept", 5), Attribute.integer("salary", 6)],
        )
        assert schema.attribute_names == ("name", "dept", "salary")
        assert schema.max_value_length() == 9
        assert len(schema) == 3

    def test_identifiers_default_to_first_letters(self):
        """The paper's example uses the identifiers N, D, S."""
        schema = RelationSchema(
            "Emp",
            [Attribute.string("name", 9), Attribute.string("dept", 5), Attribute.integer("salary", 6)],
        )
        assert [a.identifier for a in schema.attributes] == ["N", "D", "S"]

    def test_identifier_collision_falls_back_to_pool(self):
        schema = RelationSchema(
            "T", [Attribute.string("alpha", 3), Attribute.string("aleph", 3)]
        )
        identifiers = [a.identifier for a in schema.attributes]
        assert len(set(identifiers)) == 2

    def test_explicit_identifiers_respected(self):
        schema = RelationSchema("T", [Attribute.string("x", 3, identifier="Z")])
        assert schema.attribute("x").identifier == "Z"

    def test_duplicate_explicit_identifiers_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema(
                "T",
                [
                    Attribute.string("a", 3, identifier="X"),
                    Attribute.string("b", 3, identifier="X"),
                ],
            )

    def test_identifier_reverse_lookup(self):
        schema = RelationSchema("T", [Attribute.string("name", 5), Attribute.integer("count", 3)])
        assert schema.identifier_to_attribute("N").name == "name"
        assert schema.identifier_to_attribute(b"C").name == "count"
        with pytest.raises(SchemaError):
            schema.identifier_to_attribute("Z")

    def test_duplicate_attribute_names_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("T", [Attribute.string("a", 3), Attribute.integer("a", 3)])

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            RelationSchema("T", [])
        with pytest.raises(SchemaError):
            RelationSchema("", [Attribute.string("a", 3)])

    def test_attribute_lookup(self):
        schema = RelationSchema("T", [Attribute.string("a", 3)])
        assert schema.attribute("a").name == "a"
        assert schema.has_attribute("a")
        assert not schema.has_attribute("b")
        with pytest.raises(SchemaError):
            schema.attribute("b")

    def test_parse_declaration(self):
        schema = RelationSchema.parse("Emp(name:string[9], dept:string[5], salary:int)")
        assert schema.name == "Emp"
        assert schema.attribute("salary").attribute_type is AttributeType.INTEGER
        assert schema.attribute("name").max_length == 9

    def test_parse_rejects_malformed_declarations(self):
        with pytest.raises(SchemaError):
            RelationSchema.parse("Emp name:string[9]")
        with pytest.raises(SchemaError):
            RelationSchema.parse("Emp(name string[9])")

    def test_equality_and_hash(self):
        first = RelationSchema.parse("T(a:string[3], b:int[4])")
        second = RelationSchema.parse("T(a:string[3], b:int[4])")
        third = RelationSchema.parse("T(a:string[4], b:int[4])")
        assert first == second
        assert hash(first) == hash(second)
        assert first != third

    def test_repr_is_informative(self):
        schema = RelationSchema.parse("T(a:string[3])")
        assert "T" in repr(schema) and "string" in repr(schema)
