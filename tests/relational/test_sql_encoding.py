"""Tests for the SQL parser and the value / tuple codecs."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational.encoding import TupleCodec, ValueCodec, word_value_width
from repro.relational.errors import EncodingError, SqlParseError
from repro.relational.query import ConjunctiveSelection, Projection, Selection
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, RelationSchema
from repro.relational.sql import parse_sql
from repro.relational.tuples import RelationTuple


@pytest.fixture
def schema():
    return RelationSchema(
        "Emp",
        [Attribute.string("name", 10), Attribute.string("dept", 5), Attribute.integer("salary", 6)],
    )


class TestSqlParser:
    def test_single_equality(self, schema):
        parsed = parse_sql("SELECT * FROM Emp WHERE dept = 'HR'", schema)
        assert parsed.relation_name == "Emp"
        assert isinstance(parsed.query, Selection)
        assert parsed.query.value == "HR"

    def test_paper_hospital_queries(self):
        """The exact statements from Section 2 of the paper."""
        schema = RelationSchema(
            "table",
            [Attribute.integer("hospital", 1), Attribute.string("outcome", 7)],
        )
        for statement, attribute, value in [
            ("SELECT * FROM table WHERE hospital = 1;", "hospital", 1),
            ("SELECT * FROM table WHERE outcome = 'fatal';", "outcome", "fatal"),
        ]:
            parsed = parse_sql(statement, schema)
            assert isinstance(parsed.query, Selection)
            assert parsed.query.attribute == attribute
            assert parsed.query.value == value

    def test_conjunction(self, schema):
        parsed = parse_sql("SELECT * FROM Emp WHERE dept = 'HR' AND salary = 800", schema)
        assert isinstance(parsed.query, ConjunctiveSelection)
        assert len(parsed.query.predicates()) == 2

    def test_projection(self, schema):
        parsed = parse_sql("SELECT name, salary FROM Emp WHERE dept = 'HR'", schema)
        assert isinstance(parsed.query, Projection)
        assert parsed.query.attributes == ("name", "salary")

    def test_integer_literal_typed_by_schema(self, schema):
        parsed = parse_sql("SELECT * FROM Emp WHERE salary = 800", schema)
        assert parsed.query.value == 800

    def test_bare_literal_for_string_attribute(self, schema):
        parsed = parse_sql("SELECT * FROM Emp WHERE dept = HR", schema)
        assert parsed.query.value == "HR"

    def test_without_schema_numbers_parse_as_int(self):
        parsed = parse_sql("SELECT * FROM t WHERE x = 42")
        assert parsed.query.value == 42

    def test_case_insensitive_keywords(self, schema):
        parsed = parse_sql("select name from Emp where dept = 'HR'", schema)
        assert isinstance(parsed.query, Projection)

    def test_missing_where_rejected(self, schema):
        with pytest.raises(SqlParseError):
            parse_sql("SELECT * FROM Emp", schema)

    def test_malformed_statements_rejected(self, schema):
        for bad in [
            "UPDATE Emp SET x = 1",
            "SELECT FROM Emp WHERE a = 1",
            "SELECT * FROM Emp WHERE dept LIKE 'H%'",
            "SELECT * FROM Emp WHERE salary > 100",
        ]:
            with pytest.raises(SqlParseError):
                parse_sql(bad, schema)

    def test_unknown_attribute_rejected_with_schema(self, schema):
        with pytest.raises(SqlParseError):
            parse_sql("SELECT * FROM Emp WHERE nope = 1", schema)

    def test_bad_integer_literal_rejected(self, schema):
        with pytest.raises(SqlParseError):
            parse_sql("SELECT * FROM Emp WHERE salary = abc", schema)


class TestValueCodec:
    def test_string_roundtrip(self, schema):
        attribute = schema.attribute("name")
        assert ValueCodec.decode(attribute, ValueCodec.encode(attribute, "Ada")) == "Ada"

    def test_integer_roundtrip(self, schema):
        attribute = schema.attribute("salary")
        assert ValueCodec.decode(attribute, ValueCodec.encode(attribute, 7500)) == 7500
        assert ValueCodec.encode(attribute, 7500) == b"7500"

    def test_decode_errors(self, schema):
        salary = schema.attribute("salary")
        with pytest.raises(EncodingError):
            ValueCodec.decode(salary, b"not-an-int")
        with pytest.raises(EncodingError):
            ValueCodec.decode(salary, b"\xff\xfe")

    def test_encode_validates(self, schema):
        with pytest.raises(Exception):
            ValueCodec.encode(schema.attribute("name"), "x" * 99)


class TestTupleCodec:
    def test_roundtrip(self, schema):
        codec = TupleCodec(schema)
        t = RelationTuple(schema, {"name": "Ada", "dept": "IT", "salary": 900})
        assert codec.decode(codec.encode(t)) == t

    def test_rejects_foreign_tuple(self, schema):
        other = RelationSchema("X", [Attribute.string("a", 3)])
        codec = TupleCodec(schema)
        with pytest.raises(EncodingError):
            codec.encode(RelationTuple(other, {"a": "x"}))

    def test_rejects_truncated_and_padded_bytes(self, schema):
        codec = TupleCodec(schema)
        t = RelationTuple(schema, {"name": "Ada", "dept": "IT", "salary": 900})
        raw = codec.encode(t)
        with pytest.raises(EncodingError):
            codec.decode(raw[:-1])
        with pytest.raises(EncodingError):
            codec.decode(raw + b"\x00")
        with pytest.raises(EncodingError):
            codec.decode(b"\x00")

    def test_word_value_width(self, schema):
        assert word_value_width(schema) == 10


@given(
    name=st.text(alphabet="abcdefghij", min_size=1, max_size=10),
    dept=st.sampled_from(["IT", "HR", "OPS"]),
    salary=st.integers(min_value=-99999, max_value=999999),
)
@settings(max_examples=60, deadline=None)
def test_property_tuple_codec_roundtrip(name, dept, salary):
    schema = RelationSchema(
        "Emp",
        [Attribute.string("name", 10), Attribute.string("dept", 5), Attribute.integer("salary", 6)],
    )
    codec = TupleCodec(schema)
    t = RelationTuple(schema, {"name": name, "dept": dept, "salary": salary})
    assert codec.decode(codec.encode(t)) == t
