"""Tests for tuples and relations (multiset semantics)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational.errors import SchemaError
from repro.relational.relation import Relation
from repro.relational.schema import Attribute, RelationSchema
from repro.relational.tuples import RelationTuple


@pytest.fixture
def schema():
    return RelationSchema(
        "Emp",
        [Attribute.string("name", 10), Attribute.string("dept", 5), Attribute.integer("salary", 6)],
    )


class TestRelationTuple:
    def test_construction_and_access(self, schema):
        t = RelationTuple(schema, {"name": "Ada", "dept": "IT", "salary": 900})
        assert t.value("name") == "Ada"
        assert t["salary"] == 900
        assert t.as_dict() == {"name": "Ada", "dept": "IT", "salary": 900}
        assert list(t) == ["name", "dept", "salary"]
        assert len(t) == 3

    def test_missing_and_extra_attributes_rejected(self, schema):
        with pytest.raises(SchemaError):
            RelationTuple(schema, {"name": "Ada", "dept": "IT"})
        with pytest.raises(SchemaError):
            RelationTuple(schema, {"name": "Ada", "dept": "IT", "salary": 1, "extra": 2})

    def test_type_validation(self, schema):
        with pytest.raises(SchemaError):
            RelationTuple(schema, {"name": "Ada", "dept": "IT", "salary": "high"})

    def test_projection(self, schema):
        t = RelationTuple(schema, {"name": "Ada", "dept": "IT", "salary": 900})
        assert t.project(["salary", "name"]) == (900, "Ada")

    def test_value_semantics(self, schema):
        a = RelationTuple(schema, {"name": "Ada", "dept": "IT", "salary": 900})
        b = RelationTuple(schema, {"name": "Ada", "dept": "IT", "salary": 900})
        c = RelationTuple(schema, {"name": "Bob", "dept": "IT", "salary": 900})
        assert a == b and hash(a) == hash(b)
        assert a != c

    def test_unknown_key_raises(self, schema):
        t = RelationTuple(schema, {"name": "Ada", "dept": "IT", "salary": 900})
        with pytest.raises(KeyError):
            t["missing"]


class TestRelation:
    def test_add_and_len(self, schema):
        relation = Relation(schema)
        relation.add({"name": "Ada", "dept": "IT", "salary": 900})
        relation.add({"name": "Bob", "dept": "HR", "salary": 800})
        assert len(relation) == 2

    def test_from_rows(self, schema):
        relation = Relation.from_rows(schema, [("Ada", "IT", 900), ("Bob", "HR", 800)])
        assert len(relation) == 2
        assert relation.tuples[0].value("name") == "Ada"

    def test_from_rows_width_mismatch(self, schema):
        with pytest.raises(SchemaError):
            Relation.from_rows(schema, [("Ada", "IT")])

    def test_add_rejects_foreign_schema(self, schema):
        other = RelationSchema("Other", [Attribute.string("x", 3)])
        foreign = RelationTuple(other, {"x": "a"})
        with pytest.raises(SchemaError):
            Relation(schema).add(foreign)

    def test_select_equal(self, schema):
        relation = Relation.from_rows(
            schema, [("Ada", "IT", 900), ("Bob", "HR", 800), ("Cid", "IT", 700)]
        )
        selected = relation.select_equal("dept", "IT")
        assert len(selected) == 2
        assert all(t.value("dept") == "IT" for t in selected)

    def test_select_equal_unknown_attribute(self, schema):
        with pytest.raises(SchemaError):
            Relation(schema).select_equal("nope", 1)

    def test_project(self, schema):
        relation = Relation.from_rows(schema, [("Ada", "IT", 900)])
        assert relation.project(["salary", "name"]) == [(900, "Ada")]
        with pytest.raises(SchemaError):
            relation.project(["nope"])

    def test_distinct_values(self, schema):
        relation = Relation.from_rows(
            schema, [("Ada", "IT", 900), ("Bob", "HR", 800), ("Cid", "IT", 700)]
        )
        assert relation.distinct_values("dept") == {"IT", "HR"}

    def test_multiset_equality_ignores_order(self, schema):
        first = Relation.from_rows(schema, [("Ada", "IT", 900), ("Bob", "HR", 800)])
        second = Relation.from_rows(schema, [("Bob", "HR", 800), ("Ada", "IT", 900)])
        assert first == second

    def test_multiset_equality_counts_multiplicity(self, schema):
        first = Relation.from_rows(schema, [("Ada", "IT", 900), ("Ada", "IT", 900)])
        second = Relation.from_rows(schema, [("Ada", "IT", 900)])
        assert first != second

    def test_relations_are_not_hashable(self, schema):
        with pytest.raises(TypeError):
            hash(Relation(schema))

    def test_contains_and_iter(self, schema):
        relation = Relation.from_rows(schema, [("Ada", "IT", 900)])
        t = relation.tuples[0]
        assert t in relation
        assert list(relation) == [t]

    def test_extend(self, schema):
        relation = Relation(schema)
        relation.extend([{"name": "Ada", "dept": "IT", "salary": 900},
                         {"name": "Bob", "dept": "HR", "salary": 800}])
        assert len(relation) == 2


@given(
    rows=st.lists(
        st.tuples(
            st.text(alphabet="abcdefgh", min_size=1, max_size=8),
            st.sampled_from(["IT", "HR", "OPS"]),
            st.integers(min_value=0, max_value=999999),
        ),
        min_size=0,
        max_size=20,
    )
)
@settings(max_examples=50, deadline=None)
def test_property_selection_partition(rows):
    """select_equal partitions the relation: sizes of per-value selections sum to the total."""
    schema = RelationSchema(
        "Emp",
        [Attribute.string("name", 10), Attribute.string("dept", 5), Attribute.integer("salary", 6)],
    )
    relation = Relation.from_rows(schema, rows)
    total = sum(len(relation.select_equal("dept", d)) for d in ["IT", "HR", "OPS"])
    assert total == len(relation)
