"""The runner's measurement discipline (in-process cells: fast, hermetic)."""

from __future__ import annotations

import pytest

from repro.bench import (
    BenchError,
    CellConfig,
    MatrixConfig,
    ResultStore,
    SCHEMA_VERSION,
    SLOWDOWN_ENV,
    injected_slowdown_s,
    run_cell,
    run_matrix,
)

CELL = CellConfig(
    benchmark="exact_select", scheme="swp", transport="in-process",
    table_size=24, operations=4,
)


class TestSlowdownKnob:
    def test_absent_means_zero(self, monkeypatch):
        monkeypatch.delenv(SLOWDOWN_ENV, raising=False)
        assert injected_slowdown_s() == 0.0

    def test_parses_seconds(self, monkeypatch):
        monkeypatch.setenv(SLOWDOWN_ENV, "0.25")
        assert injected_slowdown_s() == 0.25

    def test_rejects_garbage_and_negatives(self, monkeypatch):
        monkeypatch.setenv(SLOWDOWN_ENV, "fast")
        with pytest.raises(BenchError, match="not a number"):
            injected_slowdown_s()
        monkeypatch.setenv(SLOWDOWN_ENV, "-1")
        with pytest.raises(BenchError, match="non-negative"):
            injected_slowdown_s()


class TestRunCell:
    def test_select_cell_records_samples_and_latency(self, monkeypatch):
        monkeypatch.delenv(SLOWDOWN_ENV, raising=False)
        result = run_cell(CELL, warmup=1, repeats=2, seed=3)
        assert result["config_id"] == CELL.config_id
        assert result["params"] == CELL.as_dict()
        assert len(result["samples"]["seconds"]) == 2
        assert len(result["samples"]["ops_per_s"]) == 2
        assert result["ops_per_repeat"] == 4
        assert result["mean_ops_per_s"] > 0
        assert result["stddev_ops_per_s"] >= 0
        # The metrics delta covers exactly the timed window: warmup and
        # seeding are excluded, so the select histogram counts the
        # repeats' operations alone.
        selects = [
            entry for entry in result["latency"]
            if entry["name"] == "session_op_seconds"
            and entry["labels"].get("op_kind") == "select"
        ]
        assert sum(entry["count"] for entry in selects) == 2 * 4
        assert all(entry["p99"] > 0 for entry in selects)

    def test_insert_cell_runs(self, monkeypatch):
        monkeypatch.delenv(SLOWDOWN_ENV, raising=False)
        cell = CellConfig(
            benchmark="insert", transport="in-process",
            table_size=8, operations=6,
        )
        result = run_cell(cell, warmup=1, repeats=2, seed=3)
        assert result["mean_ops_per_s"] > 0
        inserts = [
            entry for entry in result["latency"]
            if entry["name"] == "session_op_seconds"
            and entry["labels"].get("op_kind") == "insert"
        ]
        assert sum(entry["count"] for entry in inserts) == 2 * 6

    def test_injected_slowdown_bounds_throughput(self, monkeypatch):
        monkeypatch.setenv(SLOWDOWN_ENV, "0.02")
        result = run_cell(CELL, warmup=0, repeats=1, seed=3)
        # Each of the 4 operations sleeps 20ms inside the timed loop, so
        # throughput is deterministically capped at 50 ops/s.
        assert result["mean_ops_per_s"] <= 50.0
        assert result["slowdown_injected_s"] == 0.02

    def test_invalid_cell_is_rejected_before_deploying(self):
        bad = CellConfig(benchmark="exact_select", in_flight=2)
        with pytest.raises(Exception, match="in_flight"):
            run_cell(bad, warmup=0, repeats=1, seed=0)


class TestRunMatrix:
    def test_run_writes_through_the_store(self, tmp_path, monkeypatch):
        monkeypatch.delenv(SLOWDOWN_ENV, raising=False)
        config = MatrixConfig.from_dict(
            {
                "experiment": "mini",
                "warmup": 0,
                "repeats": 2,
                "seed": 5,
                "matrix": [
                    {
                        "benchmark": "exact_select",
                        "transport": "in-process",
                        "table_size": 16,
                        "operations": 3,
                    }
                ],
                "gates": {"max_regression_pct": 20},
            }
        )
        store = ResultStore(tmp_path)
        payload = run_matrix(config, store=store, rev="r1")
        stored = store.load("bench_mini", "r1")
        assert stored is not None
        assert stored["schema_version"] == SCHEMA_VERSION
        assert stored["git_rev"] == "r1"
        assert stored["experiment"] == "mini"
        assert stored["params"] == {"warmup": 0, "repeats": 2, "seed": 5}
        assert stored["gates"]["max_regression_pct"] == 20.0
        assert len(stored["cells"]) == 1
        assert stored["cells"][0]["config_id"] == config.cells[0].config_id
        assert stored["runtime_metrics"]["histograms"]
        assert payload["result_path"].endswith("bench_mini.json")
        # The latest copy rides along at the legacy flat path.
        assert store.load("bench_mini") is not None
