"""The gate engine over synthetic recorded history."""

from __future__ import annotations

import json

import pytest

from repro.bench import GateError, MatrixConfig, ResultStore, evaluate_gates


def _config(**gates) -> MatrixConfig:
    return MatrixConfig.from_dict(
        {
            "experiment": "t",
            "matrix": [{"benchmark": "exact_select"}],
            "gates": gates,
        }
    )


def _cell(config_id: str, mean: float, p99: float = 0.01) -> dict:
    return {
        "config_id": config_id,
        "mean_ops_per_s": mean,
        "stddev_ops_per_s": 0.0,
        "latency": [
            {
                "name": "session_op_seconds",
                "labels": {"op_kind": "select"},
                "count": 10,
                "mean": p99,
                "p50": p99,
                "p95": p99,
                "p99": p99,
            }
        ],
    }


def _record(store: ResultStore, rev: str, *cells: dict, stamp: str | None = None) -> None:
    store.write("bench_t", {"cells": list(cells)}, rev=rev)
    if stamp is not None:
        path = store.root / rev / "bench_t.json"
        payload = json.loads(path.read_text(encoding="utf-8"))
        payload["generated_at"] = stamp
        path.write_text(json.dumps(payload), encoding="utf-8")


class TestRegressionGate:
    def test_within_threshold_passes(self, tmp_path):
        store = ResultStore(tmp_path)
        _record(store, "base", _cell("c1", 100.0))
        _record(store, "cand", _cell("c1", 85.0))
        report = evaluate_gates(
            _config(max_regression_pct=20), store,
            baseline="base", candidate="cand",
        )
        assert report.passed
        assert report.checks >= 1

    def test_breach_fails_with_the_measured_numbers(self, tmp_path):
        store = ResultStore(tmp_path)
        _record(store, "base", _cell("c1", 100.0))
        _record(store, "cand", _cell("c1", 70.0))
        report = evaluate_gates(
            _config(max_regression_pct=20), store,
            baseline="base", candidate="cand",
        )
        assert not report.passed
        violation = report.violations[0]
        assert violation.kind == "regression"
        assert violation.config_id == "c1"
        assert violation.measured == pytest.approx(30.0)
        assert "30.0%" in violation.detail

    def test_improvement_passes(self, tmp_path):
        store = ResultStore(tmp_path)
        _record(store, "base", _cell("c1", 100.0))
        _record(store, "cand", _cell("c1", 250.0))
        report = evaluate_gates(
            _config(max_regression_pct=20), store,
            baseline="base", candidate="cand",
        )
        assert report.passed

    def test_new_cell_is_noted_not_failed(self, tmp_path):
        store = ResultStore(tmp_path)
        _record(store, "base", _cell("c1", 100.0))
        _record(store, "cand", _cell("c1", 100.0), _cell("c2-new", 5.0))
        report = evaluate_gates(
            _config(max_regression_pct=20), store,
            baseline="base", candidate="cand",
        )
        assert report.passed
        assert any("c2-new" in note for note in report.notes)

    def test_self_comparison_is_zero_regression(self, tmp_path):
        store = ResultStore(tmp_path)
        _record(store, "only", _cell("c1", 42.0))
        report = evaluate_gates(
            _config(max_regression_pct=20), store,
            baseline="only", candidate="only",
        )
        assert report.passed


class TestP99Gate:
    def test_ceiling_violation_fails(self, tmp_path):
        store = ResultStore(tmp_path)
        _record(store, "cand", _cell("c1", 100.0, p99=0.5))
        report = evaluate_gates(
            _config(max_p99_s={"session_op_seconds": 0.1}), store,
            candidate="cand",
        )
        assert not report.passed
        assert report.violations[0].kind == "p99"
        assert report.violations[0].limit == pytest.approx(0.1)

    def test_ceiling_respected_passes(self, tmp_path):
        store = ResultStore(tmp_path)
        _record(store, "cand", _cell("c1", 100.0, p99=0.05))
        report = evaluate_gates(
            _config(max_p99_s={"session_op_seconds": 0.1}), store,
            candidate="cand",
        )
        assert report.passed

    def test_absent_metric_is_noted_not_failed(self, tmp_path):
        store = ResultStore(tmp_path)
        _record(store, "cand", _cell("c1", 100.0))
        report = evaluate_gates(
            _config(max_p99_s={"router_scatter_seconds": 0.1}), store,
            candidate="cand",
        )
        assert report.passed
        assert any("router_scatter_seconds" in note for note in report.notes)


class TestRevisionSelection:
    def test_defaults_pick_newest_candidate_and_previous_baseline(self, tmp_path):
        store = ResultStore(tmp_path)
        _record(store, "old", _cell("c1", 100.0), stamp="2026-01-01T00:00:00Z")
        _record(store, "new", _cell("c1", 50.0), stamp="2026-02-01T00:00:00Z")
        report = evaluate_gates(_config(max_regression_pct=20), store)
        assert report.candidate_rev == "new"
        assert report.baseline_rev == "old"
        assert not report.passed

    def test_single_run_without_baseline_is_noted(self, tmp_path):
        store = ResultStore(tmp_path)
        _record(store, "only", _cell("c1", 100.0))
        report = evaluate_gates(_config(max_regression_pct=20), store)
        assert report.passed
        assert report.baseline_rev is None
        assert any("no baseline" in note for note in report.notes)

    def test_require_baseline_raises_without_one(self, tmp_path):
        store = ResultStore(tmp_path)
        _record(store, "only", _cell("c1", 100.0))
        with pytest.raises(GateError, match="no baseline"):
            evaluate_gates(
                _config(max_regression_pct=20), store, require_baseline=True
            )

    def test_no_recorded_runs_raises(self, tmp_path):
        with pytest.raises(GateError, match="no recorded runs"):
            evaluate_gates(_config(), ResultStore(tmp_path))

    def test_unknown_revision_labels_raise(self, tmp_path):
        store = ResultStore(tmp_path)
        _record(store, "r1", _cell("c1", 100.0))
        with pytest.raises(GateError, match="candidate revision"):
            evaluate_gates(_config(), store, candidate="nope")
        with pytest.raises(GateError, match="baseline revision"):
            evaluate_gates(_config(), store, candidate="r1", baseline="nope")

    def test_report_renders_verdict_and_violations(self, tmp_path):
        store = ResultStore(tmp_path)
        _record(store, "base", _cell("c1", 100.0))
        _record(store, "cand", _cell("c1", 10.0))
        report = evaluate_gates(
            _config(max_regression_pct=20), store,
            baseline="base", candidate="cand",
        )
        rendered = report.render()
        assert "gate FAILED" in rendered
        assert "FAIL c1" in rendered
        passing = evaluate_gates(
            _config(max_regression_pct=20), store,
            baseline="base", candidate="base",
        )
        assert "gate PASSED" in passing.render()
