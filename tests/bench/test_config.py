"""Matrix config parsing, expansion and validation."""

from __future__ import annotations

import json

import pytest

from repro.bench import (
    CellConfig,
    ConfigError,
    GateSpec,
    MatrixConfig,
    expand_matrix_entry,
)


def _minimal(**overrides) -> dict:
    raw = {
        "experiment": "t",
        "matrix": [{"benchmark": "exact_select"}],
    }
    raw.update(overrides)
    return raw


class TestExpansion:
    def test_scalar_axes_expand_to_one_cell(self):
        cells = expand_matrix_entry({"benchmark": "exact_select", "scheme": "swp"})
        assert len(cells) == 1
        assert cells[0].scheme == "swp"
        assert cells[0].transport == "in-process"

    def test_list_axes_expand_to_the_cartesian_product(self):
        cells = expand_matrix_entry(
            {
                "benchmark": "exact_select",
                "transport": ["tcp", "tcp-async"],
                "in_flight": [1, 4],
            }
        )
        assert len(cells) == 4
        assert {(c.transport, c.in_flight) for c in cells} == {
            ("tcp", 1), ("tcp", 4), ("tcp-async", 1), ("tcp-async", 4),
        }

    def test_unknown_axis_rejected(self):
        with pytest.raises(ConfigError, match="unknown axis"):
            expand_matrix_entry({"benchmark": "exact_select", "threads": 3})

    def test_benchmark_is_required(self):
        with pytest.raises(ConfigError, match="needs a benchmark"):
            expand_matrix_entry({"scheme": "swp"})

    def test_empty_list_axis_rejected(self):
        with pytest.raises(ConfigError, match="expands to nothing"):
            expand_matrix_entry({"benchmark": "insert", "transport": []})


class TestCellValidation:
    def test_config_id_is_stable_and_distinct(self):
        one = CellConfig(benchmark="exact_select", transport="tcp")
        same = CellConfig(benchmark="exact_select", transport="tcp")
        other = CellConfig(benchmark="exact_select", transport="tcp", in_flight=2)
        assert one.config_id == same.config_id
        assert one.config_id != other.config_id

    def test_unknown_benchmark_rejected(self):
        with pytest.raises(ConfigError, match="unknown benchmark"):
            CellConfig(benchmark="sort").validate()

    def test_unknown_transport_rejected(self):
        with pytest.raises(ConfigError, match="unknown transport"):
            CellConfig(benchmark="insert", transport="udp").validate()

    def test_non_cluster_transport_refuses_shards(self):
        with pytest.raises(ConfigError, match="shards must be 1"):
            CellConfig(benchmark="insert", transport="tcp", shards=2).validate()

    def test_in_process_refuses_concurrent_clients(self):
        with pytest.raises(ConfigError, match="in_flight must be 1"):
            CellConfig(benchmark="insert", in_flight=2).validate()

    def test_cluster_allows_shards_and_depth(self):
        CellConfig(
            benchmark="exact_select", transport="cluster-async",
            shards=3, in_flight=4,
        ).validate()

    def test_positive_integer_knobs(self):
        with pytest.raises(ConfigError, match="table_size"):
            CellConfig(benchmark="insert", table_size=0).validate()
        with pytest.raises(ConfigError, match="operations"):
            CellConfig(benchmark="insert", operations=-1).validate()

    def test_workload_axis_validated(self):
        CellConfig(benchmark="exact_select", workload="zipfian").validate()
        with pytest.raises(ConfigError, match="unknown workload"):
            CellConfig(benchmark="exact_select", workload="zipf").validate()
        with pytest.raises(ConfigError, match="zipf_exponent"):
            CellConfig(
                benchmark="exact_select", workload="zipfian", zipf_exponent=0
            ).validate()
        with pytest.raises(ConfigError, match="only supports 'uniform'"):
            CellConfig(benchmark="insert", workload="zipfian").validate()

    def test_cache_axis_validated(self):
        CellConfig(benchmark="exact_select", cache="client").validate()
        CellConfig(
            benchmark="exact_select", transport="cluster", shards=2,
            in_flight=2, cache="coordinator",
        ).validate()
        with pytest.raises(ConfigError, match="unknown cache mode"):
            CellConfig(benchmark="exact_select", cache="on").validate()
        with pytest.raises(ConfigError, match="needs a cluster transport"):
            CellConfig(benchmark="exact_select", cache="coordinator").validate()
        with pytest.raises(ConfigError, match="needs a cluster transport"):
            CellConfig(
                benchmark="exact_select", transport="tcp", cache="both"
            ).validate()

    def test_default_workload_and_cache_keep_legacy_config_ids(self):
        # The new axes must not rename pre-existing cells: their history
        # in the result store is keyed on config_id.
        cell = CellConfig(benchmark="exact_select", transport="tcp")
        assert cell.config_id == "exact_select:swp:tcp:s1:d1:n100:q10"
        zipf = CellConfig(
            benchmark="exact_select", workload="zipfian", zipf_exponent=1.3,
            cache="client",
        )
        assert zipf.config_id.endswith(":wzipfian:z1.3:cclient")


class TestMatrixConfig:
    def test_full_document_parses(self):
        config = MatrixConfig.from_dict(
            {
                "experiment": "quick",
                "warmup": 2,
                "repeats": 5,
                "seed": 7,
                "matrix": [
                    {"benchmark": "exact_select", "transport": ["in-process", "tcp"]},
                    {"benchmark": "insert", "transport": "tcp"},
                ],
                "gates": {
                    "max_regression_pct": 20,
                    "max_p99_s": {"session_op_seconds": 5.0},
                },
            }
        )
        assert config.experiment == "quick"
        assert config.result_name == "bench_quick"
        assert len(config.cells) == 3
        assert config.warmup == 2 and config.repeats == 5 and config.seed == 7
        assert config.gates.max_regression_pct == 20.0
        assert config.gates.max_p99_s == {"session_op_seconds": 5.0}

    def test_duplicate_cells_rejected(self):
        with pytest.raises(ConfigError, match="duplicate cell"):
            MatrixConfig.from_dict(
                _minimal(matrix=[
                    {"benchmark": "exact_select"},
                    {"benchmark": "exact_select"},
                ])
            )

    def test_unknown_top_level_key_rejected(self):
        with pytest.raises(ConfigError, match="unknown config key"):
            MatrixConfig.from_dict(_minimal(reps=3))

    def test_empty_matrix_rejected(self):
        with pytest.raises(ConfigError, match="non-empty list"):
            MatrixConfig.from_dict(_minimal(matrix=[]))

    def test_experiment_name_required(self):
        with pytest.raises(ConfigError, match="experiment"):
            MatrixConfig.from_dict({"matrix": [{"benchmark": "insert"}]})

    def test_discipline_knobs_validated(self):
        with pytest.raises(ConfigError, match="repeats"):
            MatrixConfig.from_dict(_minimal(repeats=0))
        with pytest.raises(ConfigError, match="warmup"):
            MatrixConfig.from_dict(_minimal(warmup=-1))
        with pytest.raises(ConfigError, match="seed"):
            MatrixConfig.from_dict(_minimal(seed="x"))

    def test_gate_validation(self):
        with pytest.raises(ConfigError, match="max_regression_pct"):
            GateSpec.from_dict({"max_regression_pct": -5})
        with pytest.raises(ConfigError, match="max_p99_s"):
            GateSpec.from_dict({"max_p99_s": {"m": 0}})
        with pytest.raises(ConfigError, match="unknown gate"):
            GateSpec.from_dict({"max_p50_s": {}})

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "exp.json"
        path.write_text(json.dumps(_minimal()), encoding="utf-8")
        assert MatrixConfig.load(path).experiment == "t"

    def test_load_rejects_bad_json(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(ConfigError, match="not valid JSON"):
            MatrixConfig.load(path)

    def test_load_rejects_missing_file(self, tmp_path):
        with pytest.raises(ConfigError, match="cannot read"):
            MatrixConfig.load(tmp_path / "nope.json")

    def test_checked_in_quick_tier_config_is_valid(self):
        import pathlib

        path = (
            pathlib.Path(__file__).resolve().parents[2]
            / "benchmarks" / "configs" / "quick.json"
        )
        config = MatrixConfig.load(path)
        assert config.experiment == "quick"
        assert config.gates.max_regression_pct == 20.0
        transports = {cell.transport for cell in config.cells}
        assert {"in-process", "tcp", "tcp-async", "cluster"} <= transports
