"""The ``repro bench`` CLI surface: run, report, gate."""

from __future__ import annotations

import json

import pytest

from repro.bench import SLOWDOWN_ENV
from repro.cli import build_parser, main

MINI_CONFIG = {
    "experiment": "mini",
    "warmup": 0,
    "repeats": 2,
    "seed": 1,
    "matrix": [
        {
            "benchmark": "exact_select",
            "transport": "in-process",
            "table_size": 16,
            "operations": 3,
        }
    ],
    "gates": {
        "max_regression_pct": 20,
        "max_p99_s": {"session_op_seconds": 30.0},
    },
}


@pytest.fixture
def mini_config(tmp_path):
    path = tmp_path / "mini.json"
    path.write_text(json.dumps(MINI_CONFIG), encoding="utf-8")
    return path


@pytest.fixture
def results_dir(tmp_path):
    return tmp_path / "results"


class TestParser:
    def test_bench_requires_a_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["bench"])

    def test_run_defaults(self):
        args = build_parser().parse_args(["bench", "run", "--config", "c.json"])
        assert args.config == "c.json"
        assert args.results_dir == "benchmarks/results"
        assert args.rev is None and args.repeats is None and args.warmup is None

    def test_gate_flags(self):
        args = build_parser().parse_args([
            "bench", "gate", "--config", "c.json",
            "--baseline", "a", "--candidate", "b", "--require-baseline",
        ])
        assert args.baseline == "a" and args.candidate == "b"
        assert args.require_baseline is True


class TestRun:
    def test_run_records_and_prints_summary(
        self, mini_config, results_dir, capsys, monkeypatch
    ):
        monkeypatch.delenv(SLOWDOWN_ENV, raising=False)
        exit_code = main([
            "bench", "run", "--config", str(mini_config),
            "--results-dir", str(results_dir), "--rev", "r1",
        ])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "recorded 1 cell(s)" in captured.out
        assert "ops/s over 2 repeat(s)" in captured.out
        stored = json.loads(
            (results_dir / "r1" / "bench_mini.json").read_text(encoding="utf-8")
        )
        assert stored["experiment"] == "mini"

    def test_run_overrides_discipline(
        self, mini_config, results_dir, capsys, monkeypatch
    ):
        monkeypatch.delenv(SLOWDOWN_ENV, raising=False)
        exit_code = main([
            "bench", "run", "--config", str(mini_config),
            "--results-dir", str(results_dir), "--rev", "r1",
            "--repeats", "3", "--warmup", "0",
        ])
        assert exit_code == 0
        capsys.readouterr()
        stored = json.loads(
            (results_dir / "r1" / "bench_mini.json").read_text(encoding="utf-8")
        )
        assert stored["params"]["repeats"] == 3
        assert len(stored["cells"][0]["samples"]["ops_per_s"]) == 3

    def test_run_rejects_bad_overrides(self, mini_config, results_dir, capsys):
        assert main([
            "bench", "run", "--config", str(mini_config),
            "--results-dir", str(results_dir), "--repeats", "0",
        ]) == 2
        assert main([
            "bench", "run", "--config", str(mini_config),
            "--results-dir", str(results_dir), "--warmup", "-1",
        ]) == 2
        capsys.readouterr()

    def test_run_rejects_a_missing_config(self, tmp_path, results_dir, capsys):
        exit_code = main([
            "bench", "run", "--config", str(tmp_path / "nope.json"),
            "--results-dir", str(results_dir),
        ])
        assert exit_code == 2
        assert "cannot read" in capsys.readouterr().err


class TestReportAndGate:
    def _run(self, mini_config, results_dir, rev):
        assert main([
            "bench", "run", "--config", str(mini_config),
            "--results-dir", str(results_dir), "--rev", rev,
        ]) == 0

    def test_full_roundtrip_clean_and_degraded(
        self, mini_config, results_dir, capsys, monkeypatch, tmp_path
    ):
        monkeypatch.delenv(SLOWDOWN_ENV, raising=False)
        self._run(mini_config, results_dir, "base")
        # A degraded second revision via the injected per-op slowdown.
        monkeypatch.setenv(SLOWDOWN_ENV, "0.05")
        self._run(mini_config, results_dir, "slow")
        monkeypatch.delenv(SLOWDOWN_ENV, raising=False)
        capsys.readouterr()

        # Report spans both revisions.
        assert main([
            "bench", "report", "--experiment", "mini",
            "--results-dir", str(results_dir),
        ]) == 0
        report = capsys.readouterr().out
        assert "base" in report and "slow" in report
        assert "Benchmark trend: mini" in report

    def test_gate_passes_clean_and_fails_degraded(
        self, mini_config, results_dir, capsys, monkeypatch
    ):
        monkeypatch.delenv(SLOWDOWN_ENV, raising=False)
        self._run(mini_config, results_dir, "base")
        monkeypatch.setenv(SLOWDOWN_ENV, "0.05")
        self._run(mini_config, results_dir, "slow")
        monkeypatch.delenv(SLOWDOWN_ENV, raising=False)
        capsys.readouterr()

        clean = main([
            "bench", "gate", "--config", str(mini_config),
            "--results-dir", str(results_dir),
            "--baseline", "base", "--candidate", "base",
        ])
        assert clean == 0
        assert "gate PASSED" in capsys.readouterr().out

        degraded = main([
            "bench", "gate", "--config", str(mini_config),
            "--results-dir", str(results_dir),
            "--baseline", "base", "--candidate", "slow",
        ])
        assert degraded == 1
        out = capsys.readouterr().out
        assert "gate FAILED" in out
        assert "max_regression_pct" in out

    def test_report_to_file(
        self, mini_config, results_dir, tmp_path, capsys, monkeypatch
    ):
        monkeypatch.delenv(SLOWDOWN_ENV, raising=False)
        self._run(mini_config, results_dir, "r1")
        capsys.readouterr()
        output = tmp_path / "out" / "trend.md"
        assert main([
            "bench", "report", "--config", str(mini_config),
            "--results-dir", str(results_dir), "--output", str(output),
        ]) == 0
        assert "trend report written" in capsys.readouterr().out
        assert "Benchmark trend: mini" in output.read_text(encoding="utf-8")

    def test_report_needs_exactly_one_source(self, mini_config, capsys):
        assert main(["bench", "report"]) == 2
        assert "exactly one" in capsys.readouterr().err
        assert main([
            "bench", "report", "--config", str(mini_config),
            "--experiment", "mini",
        ]) == 2
        capsys.readouterr()

    def test_gate_without_recorded_runs_is_a_usage_error(
        self, mini_config, results_dir, capsys
    ):
        exit_code = main([
            "bench", "gate", "--config", str(mini_config),
            "--results-dir", str(results_dir),
        ])
        assert exit_code == 2
        assert "no recorded runs" in capsys.readouterr().err
