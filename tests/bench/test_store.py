"""The per-revision result store: layout, stamps, ordering."""

from __future__ import annotations

import json
import pathlib

from repro.bench import SCHEMA_VERSION, UNVERSIONED, ResultStore, git_dirty, git_revision

REPO_ROOT = pathlib.Path(__file__).resolve().parents[2]


def _set_generated_at(store: ResultStore, rev: str, name: str, stamp: str) -> None:
    """Rewrite a stored file's timestamp (writes within one second tie)."""
    path = store.root / rev / f"{name}.json"
    payload = json.loads(path.read_text(encoding="utf-8"))
    payload["generated_at"] = stamp
    path.write_text(json.dumps(payload), encoding="utf-8")


class TestGitProbes:
    def test_revision_and_dirty_inside_a_checkout(self):
        revision = git_revision(REPO_ROOT)
        assert revision is not None and len(revision) == 40
        assert git_dirty(REPO_ROOT) in (True, False)

    def test_outside_a_checkout_degrades_to_none(self, tmp_path):
        assert git_revision(tmp_path) is None
        assert git_dirty(tmp_path) is None


class TestWrite:
    def test_write_lands_per_rev_plus_latest_copy(self, tmp_path):
        store = ResultStore(tmp_path)
        path = store.write("bench_x", {"metrics": {"qps": 10}}, rev="abc123")
        assert path == tmp_path / "abc123" / "bench_x.json"
        per_rev = json.loads(path.read_text(encoding="utf-8"))
        latest = json.loads((tmp_path / "bench_x.json").read_text(encoding="utf-8"))
        assert per_rev == latest

    def test_payload_is_stamped(self, tmp_path):
        store = ResultStore(tmp_path)
        store.write("bench_x", {"metrics": {}}, rev="abc123")
        payload = store.load("bench_x", "abc123")
        assert payload["schema_version"] == SCHEMA_VERSION
        assert payload["git_rev"] == "abc123"
        assert "dirty" in payload
        assert "generated_at" in payload

    def test_default_rev_outside_git_is_unversioned(self, tmp_path):
        store = ResultStore(tmp_path)
        store.write("bench_x", {})
        assert store.load("bench_x", UNVERSIONED) is not None

    def test_rev_labels_cannot_escape_the_root(self, tmp_path):
        store = ResultStore(tmp_path)
        path = store.write("bench_x", {}, rev="feature/speedup")
        assert path.parent.name == "feature_speedup"
        assert path.parent.parent == tmp_path

    def test_latest_copy_can_be_suppressed(self, tmp_path):
        store = ResultStore(tmp_path)
        store.write("bench_x", {}, rev="r1", latest_copy=False)
        assert not (tmp_path / "bench_x.json").exists()

    def test_reruns_at_one_rev_overwrite_that_rev_only(self, tmp_path):
        store = ResultStore(tmp_path)
        store.write("bench_x", {"metrics": {"qps": 1}}, rev="r1")
        store.write("bench_x", {"metrics": {"qps": 2}}, rev="r1")
        assert store.load("bench_x", "r1")["metrics"] == {"qps": 2}
        assert store.revisions("bench_x") == ["r1"]


class TestReads:
    def test_revisions_order_by_generated_at(self, tmp_path):
        store = ResultStore(tmp_path)
        for rev in ("zz-old", "aa-new"):
            store.write("bench_x", {}, rev=rev)
        _set_generated_at(store, "zz-old", "bench_x", "2026-01-01T00:00:00Z")
        _set_generated_at(store, "aa-new", "bench_x", "2026-02-01T00:00:00Z")
        assert store.revisions() == ["zz-old", "aa-new"]
        assert store.revisions("bench_x") == ["zz-old", "aa-new"]

    def test_revisions_filtered_by_name(self, tmp_path):
        store = ResultStore(tmp_path)
        store.write("bench_x", {}, rev="r1")
        store.write("bench_y", {}, rev="r2")
        assert store.revisions("bench_x") == ["r1"]
        assert set(store.revisions()) == {"r1", "r2"}

    def test_latest_copies_do_not_masquerade_as_revisions(self, tmp_path):
        store = ResultStore(tmp_path)
        store.write("bench_x", {}, rev="r1")
        # The latest copy lives as a *file* directly under the root.
        assert (tmp_path / "bench_x.json").is_file()
        assert store.revisions() == ["r1"]

    def test_load_without_rev_reads_the_latest_copy(self, tmp_path):
        store = ResultStore(tmp_path)
        store.write("bench_x", {"metrics": {"qps": 1}}, rev="r1")
        store.write("bench_x", {"metrics": {"qps": 2}}, rev="r2")
        assert store.load("bench_x")["metrics"] == {"qps": 2}

    def test_missing_results_load_as_none(self, tmp_path):
        store = ResultStore(tmp_path)
        assert store.load("bench_x") is None
        assert store.load("bench_x", "r1") is None
        assert store.revisions() == []
        assert store.names("r1") == []

    def test_names_lists_one_revisions_results(self, tmp_path):
        store = ResultStore(tmp_path)
        store.write("bench_b", {}, rev="r1")
        store.write("bench_a", {}, rev="r1")
        assert store.names("r1") == ["bench_a", "bench_b"]

    def test_corrupt_json_loads_as_none(self, tmp_path):
        store = ResultStore(tmp_path)
        store.write("bench_x", {}, rev="r1")
        (tmp_path / "r1" / "bench_x.json").write_text("{broken", encoding="utf-8")
        assert store.load("bench_x", "r1") is None
