"""The markdown trend report over recorded history."""

from __future__ import annotations

import json

from repro.bench import ResultStore, collect_trend, render_trend_markdown


def _cell(config_id: str, mean: float, p99: float = 0.01) -> dict:
    return {
        "config_id": config_id,
        "mean_ops_per_s": mean,
        "stddev_ops_per_s": 1.5,
        "latency": [
            {
                "name": "session_op_seconds",
                "labels": {"op_kind": "select"},
                "count": 4,
                "mean": p99,
                "p50": p99,
                "p95": p99,
                "p99": p99,
            }
        ],
    }


def _record(store, rev, stamp, *cells, dirty=False) -> None:
    store.write("bench_t", {"cells": list(cells)}, rev=rev)
    path = store.root / rev / "bench_t.json"
    payload = json.loads(path.read_text(encoding="utf-8"))
    payload["generated_at"] = stamp
    payload["dirty"] = dirty
    path.write_text(json.dumps(payload), encoding="utf-8")


class TestCollectTrend:
    def test_pivot_keeps_rev_order_and_first_seen_configs(self, tmp_path):
        store = ResultStore(tmp_path)
        _record(store, "old", "2026-01-01T00:00:00Z", _cell("c1", 10.0))
        _record(store, "new", "2026-02-01T00:00:00Z",
                _cell("c1", 12.0), _cell("c2", 3.0))
        trend = collect_trend(store, "bench_t")
        assert trend["revisions"] == ["old", "new"]
        assert trend["config_ids"] == ["c1", "c2"]
        assert trend["payloads"]["new"]["cells"][1]["config_id"] == "c2"


class TestRenderMarkdown:
    def test_table_spans_revisions_with_inline_change(self, tmp_path):
        store = ResultStore(tmp_path)
        _record(store, "old1234567890", "2026-01-01T00:00:00Z", _cell("c1", 100.0))
        _record(store, "new1234567890", "2026-02-01T00:00:00Z", _cell("c1", 50.0))
        rendered = render_trend_markdown(store, "t")
        assert "# Benchmark trend: t" in rendered
        assert "2 recorded revision(s)" in rendered
        # Revision labels are truncated headings.
        assert "old1234567" in rendered and "new1234567" in rendered
        assert "`c1`" in rendered
        assert "100.0" in rendered
        assert "(-50.0%)" in rendered

    def test_latency_table_reports_p99(self, tmp_path):
        store = ResultStore(tmp_path)
        _record(store, "r1", "2026-01-01T00:00:00Z", _cell("c1", 10.0, p99=0.25))
        rendered = render_trend_markdown(store, "t")
        assert "Latency p99" in rendered
        assert "0.250000" in rendered

    def test_missing_cells_render_as_dashes(self, tmp_path):
        store = ResultStore(tmp_path)
        _record(store, "old", "2026-01-01T00:00:00Z", _cell("c1", 10.0))
        _record(store, "new", "2026-02-01T00:00:00Z", _cell("c2", 5.0))
        rendered = render_trend_markdown(store, "t")
        rows = [line for line in rendered.splitlines() if line.startswith("| `c1`")]
        assert rows and rows[0].rstrip().endswith("- |")

    def test_dirty_revisions_are_marked(self, tmp_path):
        store = ResultStore(tmp_path)
        _record(store, "r1", "2026-01-01T00:00:00Z", _cell("c1", 10.0), dirty=True)
        rendered = render_trend_markdown(store, "t")
        assert "r1\N{DAGGER}" in rendered

    def test_empty_history_renders_a_pointer(self, tmp_path):
        rendered = render_trend_markdown(ResultStore(tmp_path), "t")
        assert "No recorded runs" in rendered
        assert "repro bench run" in rendered
