"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.core import SearchableSelectDph
from repro.crypto.keys import SecretKey
from repro.crypto.rng import DeterministicRng
from repro.relational import Relation, RelationSchema
from repro.schemes import (
    BucketizationConfig,
    DamianiDph,
    DeterministicDph,
    HacigumusDph,
    PlaintextDph,
)
from repro.workloads import EmployeeWorkload, HospitalWorkload


@pytest.fixture
def rng():
    """A deterministic randomness source shared by a test."""
    return DeterministicRng(1234)


@pytest.fixture
def secret_key(rng):
    """A reproducible 256-bit secret key."""
    return SecretKey.generate(rng=rng)


@pytest.fixture
def employee_schema():
    """The paper's employee schema (slightly widened)."""
    return RelationSchema.parse("Emp(name:string[14], dept:string[5], salary:int[6])")


@pytest.fixture
def employee_relation(employee_schema):
    """A small employee relation mirroring the paper's Section 3 example."""
    return Relation.from_rows(
        employee_schema,
        [
            ("Montgomery", "HR", 7500),
            ("Smith", "IT", 5200),
            ("Jones", "HR", 7500),
            ("Brown", "SALES", 4100),
            ("Adams", "IT", 6100),
        ],
    )


@pytest.fixture
def hospital_workload():
    """A small hospital statistics database with the paper's marginals."""
    return HospitalWorkload.generate(300, target_name="John", seed=99)


@pytest.fixture
def employee_workload():
    """A medium synthetic employee workload."""
    return EmployeeWorkload.generate(120, seed=5)


@pytest.fixture
def swp_dph(employee_schema, secret_key, rng):
    """The paper's construction with the SWP backend."""
    return SearchableSelectDph(employee_schema, secret_key, backend="swp", rng=rng)


@pytest.fixture
def index_dph(employee_schema, secret_key, rng):
    """The paper's construction with the secure-index backend."""
    return SearchableSelectDph(employee_schema, secret_key, backend="index", rng=rng)


@pytest.fixture
def all_schemes(employee_schema, secret_key, rng):
    """One instance of every implemented database PH over the employee schema."""
    config = BucketizationConfig.uniform(
        employee_schema, num_buckets=16, minimum=0, maximum=10000
    )
    return [
        SearchableSelectDph(employee_schema, secret_key, backend="swp", rng=rng),
        SearchableSelectDph(employee_schema, secret_key, backend="index", rng=rng),
        HacigumusDph(employee_schema, secret_key, config=config, rng=rng),
        DamianiDph(employee_schema, secret_key, rng=rng),
        DeterministicDph(employee_schema, secret_key, rng=rng),
        PlaintextDph(employee_schema, secret_key, rng=rng),
    ]
