"""Client-side session cache: hits skip the provider, writes invalidate.

The stale-read regression discipline: every test that mixes writes and
cached reads checks the cached session's answers against an uncached
session over an identical provider -- cache-on must be indistinguishable
from cache-off except in round-trip count.
"""

from __future__ import annotations

import pytest

from repro.api import DatabaseError, EncryptedDatabase
from repro.outsourcing import OutsourcedDatabaseServer
from repro.relational import Selection

EMP_DECL = "Emp(name:string[14], dept:string[5], salary:int[6])"
ROWS = [(f"emp{i}", "HR" if i % 2 else "IT", 1000 + i) for i in range(12)]


class CountingServer:
    """Duck-typed provider wrapper counting protocol round trips."""

    def __init__(self, inner=None):
        self.inner = inner if inner is not None else OutsourcedDatabaseServer()
        self.handled = 0

    def handle_message(self, raw: bytes) -> bytes:
        self.handled += 1
        return self.inner.handle_message(raw)

    def __getattr__(self, name):
        return getattr(self.inner, name)


@pytest.fixture
def provider():
    return CountingServer()


@pytest.fixture
def db(provider, secret_key, rng):
    session = EncryptedDatabase.open(
        secret_key, server=provider, rng=rng, cache=True
    )
    session.create_table(EMP_DECL, rows=ROWS)
    return session


def _rows(outcome):
    return sorted(tuple(t.values()) for t in outcome.relation)


class TestReadPath:
    def test_repeat_select_skips_the_provider(self, db, provider):
        first = db.select("SELECT * FROM Emp WHERE dept = 'HR'")
        before = provider.handled
        second = db.select("SELECT * FROM Emp WHERE dept = 'HR'")
        assert provider.handled == before  # zero round trips
        assert _rows(first) == _rows(second)
        assert db.cache.stats()["hits"] == 1

    def test_distinct_queries_do_not_collide(self, db):
        hr = db.select(Selection.equals("dept", "HR"), table="Emp")
        it = db.select(Selection.equals("dept", "IT"), table="Emp")
        assert _rows(hr) != _rows(it)

    def test_all_hit_batch_skips_the_round_trip(self, db, provider):
        queries = [Selection.equals("dept", "HR"), Selection.equals("dept", "IT")]
        first = db.select_many(queries, table="Emp")
        before = provider.handled
        second = db.select_many(queries, table="Emp")
        assert provider.handled == before
        assert [_rows(o) for o in first] == [_rows(o) for o in second]

    def test_partial_hit_batch_ships_only_the_misses(self, db):
        db.select(Selection.equals("dept", "HR"), table="Emp")
        outcomes = db.select_many(
            [Selection.equals("dept", "HR"), Selection.equals("dept", "IT")],
            table="Emp",
        )
        assert [len(o.relation) for o in outcomes] == [6, 6]
        stats = db.cache.stats()
        assert stats["hits"] >= 1

    def test_single_select_fill_serves_batch_elements(self, db, provider):
        db.select(Selection.equals("dept", "HR"), table="Emp")
        db.select(Selection.equals("dept", "IT"), table="Emp")
        before = provider.handled
        outcomes = db.select_many(
            [Selection.equals("dept", "HR"), Selection.equals("dept", "IT")],
            table="Emp",
        )
        assert provider.handled == before  # the shared token namespace pays off
        assert [len(o.relation) for o in outcomes] == [6, 6]


class TestWritePathInvalidation:
    def test_insert_invalidates(self, db):
        assert len(db.select(Selection.equals("dept", "HR"), table="Emp").relation) == 6
        db.insert("Emp", {"name": "Zoe", "dept": "HR", "salary": 9})
        assert len(db.select(Selection.equals("dept", "HR"), table="Emp").relation) == 7

    def test_insert_many_invalidates(self, db):
        db.select(Selection.equals("dept", "HR"), table="Emp")
        db.insert_many(
            "Emp",
            [
                {"name": "A1", "dept": "HR", "salary": 1},
                {"name": "A2", "dept": "HR", "salary": 2},
            ],
        )
        assert len(db.select(Selection.equals("dept", "HR"), table="Emp").relation) == 8

    def test_delete_invalidates(self, db):
        db.select(Selection.equals("dept", "IT"), table="Emp")
        assert db.delete(Selection.equals("dept", "IT"), table="Emp") == 6
        assert len(db.select(Selection.equals("dept", "IT"), table="Emp").relation) == 0

    def test_update_invalidates(self, db):
        db.select(Selection.equals("name", "emp3"), table="Emp")
        db.update(Selection.equals("name", "emp3"), {"salary": 1}, table="Emp")
        outcome = db.select(Selection.equals("name", "emp3"), table="Emp")
        assert [t["salary"] for t in outcome.relation] == [1]

    def test_drop_table_clears_entries(self, db):
        db.select(Selection.equals("dept", "HR"), table="Emp")
        db.drop_table("Emp")
        assert len(db.cache) == 0


class TestEquivalenceUnderInterleavedWrites:
    def test_cached_session_matches_uncached_twin(self, secret_key, rng):
        """Interleaved insert/delete/update: cache-on answers must be
        byte-identical to an uncached session driven over the same stream."""
        from repro.crypto.rng import DeterministicRng

        def build(cache):
            server = OutsourcedDatabaseServer()
            session = EncryptedDatabase.open(
                secret_key, server=server, rng=DeterministicRng(7), cache=cache
            )
            session.create_table(EMP_DECL, rows=ROWS)
            return session

        cached, plain = build(True), build(False)
        probes = [
            Selection.equals("dept", "HR"),
            Selection.equals("dept", "IT"),
            Selection.equals("name", "emp5"),
        ]

        def check():
            for probe in probes:
                got = _rows(cached.select(probe, table="Emp"))
                want = _rows(plain.select(probe, table="Emp"))
                assert got == want, f"stale read for {probe!r}: {got} != {want}"

        check()
        for session in (cached, plain):
            session.insert("Emp", {"name": "new1", "dept": "HR", "salary": 77})
        check()
        for session in (cached, plain):
            session.delete(Selection.equals("name", "emp5"), table="Emp")
        check()
        for session in (cached, plain):
            session.update(
                Selection.equals("dept", "IT"), {"salary": 4}, table="Emp"
            )
        check()
        assert cached.cache.stats()["invalidations"] > 0


class TestConfiguration:
    def test_cache_off_by_default(self, secret_key):
        db = EncryptedDatabase.open(secret_key)
        assert db.cache is None

    def test_bad_cache_option_is_a_database_error(self, secret_key):
        with pytest.raises(DatabaseError, match="cache"):
            EncryptedDatabase.open(secret_key, cache="yes")
        with pytest.raises(DatabaseError, match="max_entries"):
            EncryptedDatabase.open(secret_key, cache=0)

    def test_int_budget_and_dict_knobs(self, secret_key):
        assert EncryptedDatabase.open(secret_key, cache=5).cache.config.max_entries == 5
        db = EncryptedDatabase.open(secret_key, cache={"ttl_s": 1.5})
        assert db.cache.config.ttl_s == 1.5

    def test_counters_ride_the_session_metrics_plane(self, db):
        db.select(Selection.equals("dept", "HR"), table="Emp")
        db.select(Selection.equals("dept", "HR"), table="Emp")
        snapshot = db.metrics_snapshot()
        hits = [
            c for c in snapshot["counters"] if c["name"] == "cache_hits_total"
        ]
        assert hits and hits[0]["value"] >= 1
        assert hits[0]["labels"] == {"tier": "client"}

    def test_lookup_spans_are_traced(self, db):
        db.select(Selection.equals("dept", "HR"), table="Emp")
        db.select(Selection.equals("dept", "HR"), table="Emp")
        trace = db.fetch_trace()
        spans = trace["spans"]
        hit_spans = [
            span
            for span in spans
            if span["name"] == "cache.lookup"
            and span["annotations"].get("outcome") == "hit"
        ]
        assert hit_spans, [s["name"] for s in spans]
