"""Coordinator cache in ShardRouter: shared hits, invalidation, failover.

The correctness bar (ISSUE 10): cache-on results must be byte-identical
to cache-off under interleaved writes, degraded reads must never be
cached, and replication/failover (including a shard killed mid-workload)
must never resurrect stale entries.
"""

from __future__ import annotations

import pytest

from repro.api import EncryptedDatabase
from repro.cluster import DEGRADED, ShardRouter
from repro.crypto.rng import DeterministicRng
from repro.outsourcing import OutsourcedDatabaseServer
from repro.relational import Selection

EMP_DECL = "Emp(name:string[14], dept:string[5], salary:int[6])"
ROWS = [(f"emp{i}", "HR" if i % 2 else "IT", 1000 + i) for i in range(30)]


class FlakyServer(OutsourcedDatabaseServer):
    """A shard that can be switched off to exercise failure paths."""

    def __init__(self):
        super().__init__()
        self.down = False
        self.handled = 0

    def _check(self):
        if self.down:
            raise ConnectionError("shard is down")

    def handle_message(self, raw: bytes) -> bytes:
        self._check()
        self.handled += 1
        return super().handle_message(raw)

    def execute_query(self, name, encrypted_query):
        self._check()
        self.handled += 1
        return super().execute_query(name, encrypted_query)

    def execute_batch(self, name, encrypted_queries):
        self._check()
        self.handled += 1
        return super().execute_batch(name, encrypted_queries)

    def insert_tuple(self, name, encrypted_tuple):
        self._check()
        return super().insert_tuple(name, encrypted_tuple)

    def delete_tuples(self, name, tuple_ids):
        self._check()
        return super().delete_tuples(name, tuple_ids)

    def delete_tuples_exact(self, name, tuple_ids):
        self._check()
        return super().delete_tuples_exact(name, tuple_ids)


def _rows(outcome):
    return sorted(tuple(t.values()) for t in outcome.relation)


def _fleet(secret_key, *, sessions=2, replicas=1, policy="fail_fast", cache=True):
    shards = [FlakyServer() for _ in range(3)]
    router = ShardRouter(shards, replicas=replicas, policy=policy, cache=cache)
    opened = [
        EncryptedDatabase.open(secret_key, server=router, rng=DeterministicRng(i))
        for i in range(sessions)
    ]
    opened[0].create_table(EMP_DECL, rows=ROWS)
    for session in opened[1:]:
        session.attach_table(EMP_DECL)
    return router, shards, opened


def _shard_messages(shards):
    return sum(shard.handled for shard in shards)


class TestSharedHits:
    def test_second_session_hits_without_touching_any_shard(self, secret_key):
        router, shards, (db1, db2) = _fleet(secret_key)
        first = db1.select(Selection.equals("dept", "HR"), table="Emp")
        before = _shard_messages(shards)
        second = db2.select(Selection.equals("dept", "HR"), table="Emp")
        assert _shard_messages(shards) == before
        assert _rows(first) == _rows(second)
        assert router.cache.stats()["hits"] == 1

    def test_batch_elements_share_the_single_query_namespace(self, secret_key):
        router, shards, (db1, db2) = _fleet(secret_key)
        db1.select(Selection.equals("dept", "HR"), table="Emp")
        db1.select(Selection.equals("dept", "IT"), table="Emp")
        before = _shard_messages(shards)
        outcomes = db2.select_many(
            [Selection.equals("dept", "HR"), Selection.equals("dept", "IT")],
            table="Emp",
        )
        assert _shard_messages(shards) == before
        assert [len(o.relation) for o in outcomes] == [15, 15]

    def test_cluster_status_reports_the_cache(self, secret_key):
        router, _, (db1, _) = _fleet(secret_key)
        db1.select(Selection.equals("dept", "HR"), table="Emp")
        status = router.cluster_status()
        entry = status["coordinator-cache"]
        assert entry["ok"] and entry["cache"]["tier"] == "coordinator"

    def test_close_is_idempotent_for_shared_sessions(self, secret_key):
        router, _, (db1, db2) = _fleet(secret_key)
        db1.close()
        db2.close()  # second close of the shared router must be a no-op
        router.close()


class TestWriteInvalidation:
    def test_insert_through_one_session_is_seen_by_the_other(self, secret_key):
        router, _, (db1, db2) = _fleet(secret_key)
        assert len(db2.select(Selection.equals("dept", "HR"), table="Emp").relation) == 15
        db1.insert("Emp", {"name": "Zoe", "dept": "HR", "salary": 1})
        assert len(db2.select(Selection.equals("dept", "HR"), table="Emp").relation) == 16

    def test_fleet_wide_delete_invalidates(self, secret_key):
        router, _, (db1, db2) = _fleet(secret_key)
        db2.select(Selection.equals("dept", "IT"), table="Emp")
        assert db1.delete(Selection.equals("dept", "IT"), table="Emp") == 15
        assert len(db2.select(Selection.equals("dept", "IT"), table="Emp").relation) == 0
        assert router.cache.stats()["invalidations"] > 0

    def test_update_through_one_session_is_seen_by_the_other(self, secret_key):
        router, _, (db1, db2) = _fleet(secret_key)
        db2.select(Selection.equals("name", "emp4"), table="Emp")
        db1.update(Selection.equals("name", "emp4"), {"salary": 2}, table="Emp")
        outcome = db2.select(Selection.equals("name", "emp4"), table="Emp")
        assert [t["salary"] for t in outcome.relation] == [2]

    def test_membership_change_flushes(self, secret_key):
        router, _, (db1,) = _fleet(secret_key, sessions=1)
        db1.select(Selection.equals("dept", "HR"), table="Emp")
        assert len(router.cache) > 0
        router.add_shard(OutsourcedDatabaseServer())
        assert len(router.cache) == 0
        # post-rebalance reads are correct and refill the cache
        assert len(db1.select(Selection.equals("dept", "HR"), table="Emp").relation) == 15

    def test_rebalance_flushes(self, secret_key):
        router, _, (db1,) = _fleet(secret_key, sessions=1)
        db1.select(Selection.equals("dept", "HR"), table="Emp")
        router.rebalance()
        assert len(router.cache) == 0


class TestDegradedAndFailover:
    def test_degraded_read_is_served_but_never_cached(self, secret_key):
        router, shards, (db1,) = _fleet(secret_key, sessions=1, policy=DEGRADED)
        full = len(db1.select(Selection.equals("dept", "HR"), table="Emp").relation)
        router.cache.flush()
        shards[1].down = True
        partial = db1.select(Selection.equals("dept", "HR"), table="Emp")
        assert len(partial.relation) < full
        assert len(router.cache) == 0  # the incomplete answer was not stored
        shards[1].down = False
        healed = db1.select(Selection.equals("dept", "HR"), table="Emp")
        assert len(healed.relation) == full  # no replay of the degraded answer

    def test_failover_read_with_replicas_is_complete_and_cacheable(self, secret_key):
        router, shards, (db1, db2) = _fleet(secret_key, replicas=2)
        full = _rows(db1.select(Selection.equals("dept", "HR"), table="Emp"))
        router.cache.flush()
        shards[2].down = True  # kill one shard mid-workload; R=2 covers it
        survived = db1.select(Selection.equals("dept", "HR"), table="Emp")
        assert _rows(survived) == full
        # the failover answer was complete, so it MAY be cached -- and a
        # hit must serve the same bytes to the other session
        again = db2.select(Selection.equals("dept", "HR"), table="Emp")
        assert _rows(again) == full

    def test_replicated_fleet_killed_mid_workload_matches_uncached(self, secret_key):
        """The acceptance-criteria scenario: replicated fleet, one shard
        dies mid-stream, interleaved writes -- cache-on stays byte-identical
        to cache-off at every step.  Writes are always fail-fast, so the
        post-kill write fails in both runs; what matters is that the failed
        write still invalidates conservatively and later failover reads
        never resurrect a pre-write answer."""
        from repro.api import DatabaseError

        def run(cache: bool) -> list:
            router, shards, (db1, db2) = _fleet(
                secret_key, replicas=2, cache=cache
            )
            observed = []

            def observe():
                for probe in ("HR", "IT"):
                    observed.append(
                        _rows(db2.select(Selection.equals("dept", probe), table="Emp"))
                    )

            observe()
            db1.insert("Emp", {"name": "mid1", "dept": "HR", "salary": 5})
            observe()
            db1.delete(Selection.equals("name", "emp7"), table="Emp")
            db1.update(Selection.equals("name", "emp2"), {"salary": 3}, table="Emp")
            observe()
            shards[0].down = True  # mid-workload kill; R=2 keeps reads complete
            observe()
            with pytest.raises(DatabaseError, match="shard is down"):
                db1.delete(Selection.equals("name", "emp9"), table="Emp")
            observe()
            return observed

        assert run(True) == run(False)


class TestEquivalenceUnderInterleavedWrites:
    def test_cache_on_matches_cache_off(self, secret_key):
        def run(cache: bool) -> list:
            router, _, (db1, db2) = _fleet(secret_key, cache=cache)
            observed = []
            probes = [
                Selection.equals("dept", "HR"),
                Selection.equals("dept", "IT"),
                Selection.equals("name", "emp11"),
            ]

            def observe():
                for probe in probes:
                    observed.append(_rows(db2.select(probe, table="Emp")))

            observe()
            db1.insert("Emp", {"name": "w1", "dept": "IT", "salary": 8})
            observe()
            db1.delete(Selection.equals("name", "emp11"), table="Emp")
            observe()
            db1.update(Selection.equals("dept", "HR"), {"salary": 6}, table="Emp")
            observe()
            db2.insert("Emp", {"name": "w2", "dept": "HR", "salary": 4})
            observe()
            return observed

        assert run(True) == run(False)

    def test_cache_on_off_agree_over_envelope_transport(self, secret_key):
        """Same discipline through the protocol-envelope path (handle_message),
        which remote cluster sessions ride."""

        def run(cache: bool) -> list:
            shards = [OutsourcedDatabaseServer() for _ in range(3)]
            router = ShardRouter(shards, cache=cache)
            db = EncryptedDatabase.open(
                secret_key, server=router, rng=DeterministicRng(3)
            )
            db.create_table(EMP_DECL, rows=ROWS)
            observed = []
            for _ in range(2):  # second pass hits the cache when enabled
                observed.append(_rows(db.select(Selection.equals("dept", "HR"), table="Emp")))
            db.insert("Emp", {"name": "x", "dept": "HR", "salary": 2})
            observed.append(_rows(db.select(Selection.equals("dept", "HR"), table="Emp")))
            return observed

        assert run(True) == run(False)
