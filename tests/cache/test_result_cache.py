"""ResultCache unit behavior: LRU, TTL, generations, flush, config."""

from __future__ import annotations

import pytest

from repro.cache import CacheConfig, CacheError, ResultCache, coerce_cache_config


class FakeClock:
    """An injectable monotonic clock tests can advance by hand."""

    def __init__(self):
        self.now = 100.0

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def _fill(cache: ResultCache, relation: str, token, value):
    generation = cache.generation(relation)
    return cache.put(relation, token, value, generation)


class TestConfigCoercion:
    def test_disabled_forms(self):
        assert coerce_cache_config(None) is None
        assert coerce_cache_config(False) is None

    def test_true_yields_defaults(self):
        config = coerce_cache_config(True)
        assert config == CacheConfig()

    def test_int_sets_the_entry_budget(self):
        assert coerce_cache_config(16).max_entries == 16

    def test_dict_sets_fields(self):
        config = coerce_cache_config({"max_entries": 8, "ttl_s": 2.5})
        assert (config.max_entries, config.ttl_s) == (8, 2.5)

    def test_config_passthrough_is_validated(self):
        with pytest.raises(CacheError, match="max_entries"):
            coerce_cache_config(CacheConfig(max_entries=0))

    def test_unknown_dict_keys_rejected(self):
        with pytest.raises(CacheError, match=r"unknown cache option.*max_size"):
            coerce_cache_config({"max_size": 8})

    def test_garbage_rejected(self):
        with pytest.raises(CacheError, match="bool, int, dict or CacheConfig"):
            coerce_cache_config("yes")

    def test_ttl_validation(self):
        with pytest.raises(CacheError, match="ttl_s must be positive"):
            coerce_cache_config({"ttl_s": 0})
        with pytest.raises(CacheError, match="ttl_s must be a number"):
            coerce_cache_config({"ttl_s": "soon"})
        assert coerce_cache_config({"ttl_s": None}).ttl_s is None


class TestLookupAndLru:
    def test_miss_then_hit(self):
        cache = ResultCache()
        assert cache.lookup("Emp", b"t1") is None
        assert _fill(cache, "Emp", b"t1", "value")
        assert cache.lookup("Emp", b"t1") == "value"
        stats = cache.stats()
        assert (stats["hits"], stats["misses"]) == (1, 1)
        assert stats["hit_ratio"] == 0.5

    def test_keys_are_scoped_by_relation(self):
        cache = ResultCache()
        _fill(cache, "Emp", b"t", "emp-answer")
        assert cache.lookup("Dept", b"t") is None

    def test_lru_evicts_the_coldest_entry(self):
        cache = ResultCache(CacheConfig(max_entries=2, ttl_s=None))
        _fill(cache, "Emp", b"a", 1)
        _fill(cache, "Emp", b"b", 2)
        assert cache.get("Emp", b"a") == 1  # touch: "b" is now coldest
        _fill(cache, "Emp", b"c", 3)
        assert cache.get("Emp", b"b") is None
        assert cache.get("Emp", b"a") == 1
        assert cache.get("Emp", b"c") == 3
        assert cache.stats()["evictions"] == 1

    def test_len_reports_live_entries(self):
        cache = ResultCache()
        assert len(cache) == 0
        _fill(cache, "Emp", b"a", 1)
        assert len(cache) == 1


class TestTtl:
    def test_expired_entries_miss_and_count_as_evictions(self):
        clock = FakeClock()
        cache = ResultCache(CacheConfig(ttl_s=10.0), clock=clock)
        _fill(cache, "Emp", b"t", "value")
        clock.advance(9.9)
        assert cache.get("Emp", b"t") == "value"
        clock.advance(0.2)
        assert cache.get("Emp", b"t") is None
        assert cache.stats()["evictions"] == 1

    def test_ttl_none_never_expires(self):
        clock = FakeClock()
        cache = ResultCache(CacheConfig(ttl_s=None), clock=clock)
        _fill(cache, "Emp", b"t", "value")
        clock.advance(1e9)
        assert cache.get("Emp", b"t") == "value"


class TestGenerations:
    def test_invalidate_drops_only_that_relation(self):
        cache = ResultCache()
        _fill(cache, "Emp", b"a", 1)
        _fill(cache, "Dept", b"b", 2)
        cache.invalidate("Emp")
        assert cache.get("Emp", b"a") is None
        assert cache.get("Dept", b"b") == 2
        assert cache.stats()["invalidations"] == 1

    def test_stale_fill_is_dropped(self):
        # A write landing while the read is in flight must fence the fill.
        cache = ResultCache()
        generation = cache.generation("Emp")
        cache.invalidate("Emp")
        assert not cache.put("Emp", b"t", "pre-write answer", generation)
        assert cache.get("Emp", b"t") is None

    def test_flush_fences_every_relation(self):
        cache = ResultCache()
        generation = cache.generation("NeverSeen")
        _fill(cache, "Emp", b"a", 1)
        cache.flush()
        assert cache.get("Emp", b"a") is None
        # even a fill for a relation the cache never held is rejected
        assert not cache.put("NeverSeen", b"t", "old", generation)

    def test_fresh_generation_after_invalidate_fills_fine(self):
        cache = ResultCache()
        cache.invalidate("Emp")
        assert _fill(cache, "Emp", b"t", "new answer")
        assert cache.get("Emp", b"t") == "new answer"


class TestObservability:
    def test_metrics_flow_into_the_owner_registry(self):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        cache = ResultCache(metrics=registry, tier="coordinator")
        cache.lookup("Emp", b"t")
        snapshot = registry.snapshot()
        misses = [
            c
            for c in snapshot["counters"]
            if c["name"] == "cache_misses_total"
            and c["labels"] == {"tier": "coordinator"}
        ]
        assert misses and misses[0]["value"] == 1
        assert any(g["name"] == "cache_hit_ratio" for g in snapshot["gauges"])

    def test_stats_surface(self):
        cache = ResultCache(CacheConfig(max_entries=7, ttl_s=3.0), tier="client")
        stats = cache.stats()
        assert stats["tier"] == "client"
        assert stats["max_entries"] == 7
        assert stats["ttl_s"] == 3.0
