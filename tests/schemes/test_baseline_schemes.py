"""Tests for the baseline schemes (bucketization, hashed index, deterministic, plaintext)."""

from __future__ import annotations

import pytest

from repro.core import check_homomorphism
from repro.core.dph import DphError
from repro.relational import Relation, RelationSchema, Selection
from repro.schemes import (
    AttributeBucketing,
    BucketizationConfig,
    DamianiDph,
    DeterministicDph,
    HacigumusDph,
    PlaintextDph,
)
from repro.schemes.base import decode_field_token, encode_field_token


class TestFieldTokens:
    def test_roundtrip(self):
        index, field = decode_field_token(encode_field_token(3, b"payload"))
        assert index == 3
        assert field == b"payload"

    def test_malformed_token_rejected(self):
        with pytest.raises(DphError):
            decode_field_token(b"\x01")

    def test_two_byte_maximum_accepted(self):
        index, field = decode_field_token(encode_field_token(0xFFFF, b"x"))
        assert index == 0xFFFF
        assert field == b"x"

    def test_out_of_range_index_rejected(self):
        with pytest.raises(DphError):
            encode_field_token(0x10000, b"x")
        with pytest.raises(DphError):
            encode_field_token(-1, b"x")


class TestAllBaselinesShareTheInterface:
    def test_roundtrip_and_homomorphism(self, all_schemes, employee_relation):
        queries = [
            Selection.equals("dept", "HR"),
            Selection.equals("salary", 7500),
            Selection.equals("name", "Smith"),
        ]
        for scheme in all_schemes:
            encrypted = scheme.encrypt_relation(employee_relation)
            assert scheme.decrypt_relation(encrypted) == employee_relation
            assert check_homomorphism(scheme, employee_relation, queries).holds

    def test_schema_mismatch_rejected(self, all_schemes):
        other = Relation(RelationSchema.parse("Other(x:string[3])"))
        for scheme in all_schemes:
            with pytest.raises(DphError):
                scheme.encrypt_relation(other)

    def test_scheme_names_are_distinct(self, all_schemes):
        names = [scheme.name for scheme in all_schemes]
        assert len(set(names)) == len(names)


class TestBucketization:
    def test_equal_values_share_bucket_labels(self, employee_schema, secret_key, rng, employee_relation):
        dph = HacigumusDph(employee_schema, secret_key, rng=rng)
        encrypted = dph.encrypt_relation(employee_relation)
        montgomery, _, jones, *_ = encrypted.encrypted_tuples
        # Montgomery and Jones share dept=HR and salary=7500 -> identical labels.
        assert montgomery.search_fields[1] == jones.search_fields[1]
        assert montgomery.search_fields[2] == jones.search_fields[2]

    def test_bucket_of_integer_intervals(self, employee_schema, secret_key):
        config = BucketizationConfig.uniform(employee_schema, num_buckets=10, minimum=0, maximum=9999)
        dph = HacigumusDph(employee_schema, secret_key, config=config)
        salary = employee_schema.attribute("salary")
        assert dph.bucket_of(salary, 0) == 0
        assert dph.bucket_of(salary, 9999) == 9
        assert dph.bucket_of(salary, 4999) == 4
        # Out-of-domain values are clipped, not rejected.
        assert dph.bucket_of(salary, 10**6) == 9

    def test_bucket_of_strings_is_stable_and_in_range(self, employee_schema, secret_key):
        dph = HacigumusDph(employee_schema, secret_key)
        dept = employee_schema.attribute("dept")
        bucket = dph.bucket_of(dept, "HR")
        assert bucket == dph.bucket_of(dept, "HR")
        assert 0 <= bucket < dph.config.for_attribute("dept").num_buckets

    def test_labels_are_permuted_not_identity(self, employee_schema, secret_key):
        """The secret permutation must actually hide the bucket order for some bucket."""
        config = BucketizationConfig.uniform(employee_schema, num_buckets=64, minimum=0, maximum=6400)
        dph = HacigumusDph(employee_schema, secret_key, config=config)
        salary = employee_schema.attribute("salary")
        labels = [
            int.from_bytes(dph._search_field(salary, v), "big")
            for v in range(0, 6400, 100)
        ]
        assert labels != sorted(labels)

    def test_per_attribute_overrides(self, employee_schema, secret_key):
        config = BucketizationConfig(
            employee_schema,
            default=AttributeBucketing(num_buckets=4),
            overrides={"salary": AttributeBucketing(num_buckets=32, minimum=0, maximum=9999)},
        )
        assert config.for_attribute("salary").num_buckets == 32
        assert config.for_attribute("dept").num_buckets == 4

    def test_invalid_bucketing_rejected(self):
        with pytest.raises(DphError):
            AttributeBucketing(num_buckets=0)
        with pytest.raises(DphError):
            AttributeBucketing(minimum=10, maximum=5)

    def test_config_rejects_unknown_attribute(self, employee_schema):
        with pytest.raises(Exception):
            BucketizationConfig(employee_schema, overrides={"nope": AttributeBucketing()})

    def test_false_positives_from_coarse_buckets(self, employee_schema, secret_key, rng):
        relation = Relation.from_rows(
            employee_schema, [("A", "HR", 100), ("B", "HR", 200), ("C", "HR", 300)]
        )
        config = BucketizationConfig.uniform(employee_schema, num_buckets=1, minimum=0, maximum=999)
        dph = HacigumusDph(employee_schema, secret_key, config=config, rng=rng)
        report = check_homomorphism(dph, relation, [Selection.equals("salary", 100)])
        assert report.holds
        assert report.total_false_positives == 2


class TestDamiani:
    def test_index_values_bounded(self, employee_schema, secret_key):
        dph = DamianiDph(employee_schema, secret_key, num_hash_values=16)
        salary = employee_schema.attribute("salary")
        values = {dph.index_value_of(salary, v) for v in range(0, 1000, 7)}
        assert all(0 <= v < 16 for v in values)
        assert len(values) > 1

    def test_equal_values_share_index(self, employee_schema, secret_key):
        dph = DamianiDph(employee_schema, secret_key)
        dept = employee_schema.attribute("dept")
        assert dph.index_value_of(dept, "HR") == dph.index_value_of(dept, "HR")

    def test_collisions_cause_false_positives_that_filtering_repairs(
        self, employee_schema, secret_key, rng
    ):
        relation = Relation.from_rows(
            employee_schema, [(f"e{i}", "HR", 1000 + i) for i in range(40)]
        )
        dph = DamianiDph(employee_schema, secret_key, num_hash_values=2, rng=rng)
        report = check_homomorphism(dph, relation, [Selection.equals("salary", 1000)])
        assert report.holds
        assert report.total_false_positives > 0

    def test_invalid_parameters(self, employee_schema, secret_key):
        with pytest.raises(DphError):
            DamianiDph(employee_schema, secret_key, num_hash_values=0)


class TestDeterministic:
    def test_no_false_positives(self, employee_schema, secret_key, rng, employee_relation):
        dph = DeterministicDph(employee_schema, secret_key, rng=rng)
        report = check_homomorphism(
            dph, employee_relation, [Selection.equals("salary", 7500), Selection.equals("dept", "IT")]
        )
        assert report.holds
        assert report.total_false_positives == 0

    def test_fields_are_not_plaintext(self, employee_schema, secret_key, rng, employee_relation):
        dph = DeterministicDph(employee_schema, secret_key, rng=rng)
        encrypted = dph.encrypt_relation(employee_relation)
        assert b"Montgomery" not in b"".join(encrypted.encrypted_tuples[0].search_fields)


class TestPlaintext:
    def test_payload_and_fields_are_cleartext(self, employee_schema, employee_relation, rng):
        dph = PlaintextDph(employee_schema, rng=rng)
        encrypted = dph.encrypt_relation(employee_relation)
        first = encrypted.encrypted_tuples[0]
        assert b"Montgomery" in first.payload
        assert first.search_fields[0] == b"Montgomery"

    def test_roundtrip_without_key(self, employee_schema, employee_relation, rng):
        dph = PlaintextDph(employee_schema, rng=rng)
        assert dph.decrypt_relation(dph.encrypt_relation(employee_relation)) == employee_relation
