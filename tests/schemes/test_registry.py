"""Tests for the scheme registry."""

from __future__ import annotations

import pytest

from repro.core.dph import DatabasePrivacyHomomorphism
from repro.relational import Selection
from repro.schemes import registry
from repro.schemes.registry import (
    SchemeAlreadyRegisteredError,
    SchemeNotRegisteredError,
    available_schemes,
    create,
    get_entry,
    register_scheme,
    unregister_scheme,
)


class TestBuiltins:
    def test_all_builtins_registered(self):
        assert available_schemes() == (
            "swp", "index", "bucketization", "damiani", "deterministic", "plaintext",
        )

    def test_aliases_resolve_to_canonical_names(self):
        assert registry.resolve_name("dph-swp") == "swp"
        assert registry.resolve_name("index-sse") == "index"
        assert registry.resolve_name("hacigumus") == "bucketization"
        assert registry.resolve_name("damiani-hash") == "damiani"

    def test_unknown_name_raises_value_error(self, employee_schema):
        with pytest.raises(SchemeNotRegisteredError):
            create("no-such-scheme", employee_schema)
        assert issubclass(SchemeNotRegisteredError, ValueError)

    def test_entries_carry_descriptions(self):
        for name in available_schemes():
            assert get_entry(name).description

    def test_create_yields_working_schemes(self, employee_schema, employee_relation,
                                           secret_key, rng):
        for name in available_schemes():
            scheme = create(name, employee_schema, secret_key, rng=rng)
            assert isinstance(scheme, DatabasePrivacyHomomorphism)
            encrypted = scheme.encrypt_relation(employee_relation)
            result = scheme.server_evaluator().evaluate(
                scheme.encrypt_query(Selection.equals("dept", "HR")), encrypted
            )
            report = scheme.decrypt_result(result, Selection.equals("dept", "HR"))
            assert len(report.relation) == 2

    def test_create_generates_a_key_when_omitted(self, employee_schema):
        scheme = create("deterministic", employee_schema)
        assert isinstance(scheme, DatabasePrivacyHomomorphism)

    def test_create_accepts_raw_key_bytes(self, employee_schema):
        scheme = create("deterministic", employee_schema, b"k" * 32)
        assert isinstance(scheme, DatabasePrivacyHomomorphism)


class TestRegistration:
    def test_register_and_unregister_custom_scheme(self, employee_schema, secret_key):
        @register_scheme("test-custom", description="test-only", aliases=("tc",))
        def _build(schema, key, rng=None, **options):
            return create("plaintext", schema, key, rng=rng)

        try:
            assert "test-custom" in available_schemes()
            assert registry.resolve_name("tc") == "test-custom"
            scheme = create("tc", employee_schema, secret_key)
            assert scheme.name == "plaintext"
        finally:
            unregister_scheme("test-custom")
        assert "test-custom" not in available_schemes()
        with pytest.raises(SchemeNotRegisteredError):
            registry.resolve_name("tc")

    def test_duplicate_name_rejected(self):
        with pytest.raises(SchemeAlreadyRegisteredError):
            register_scheme("swp")(lambda schema, key, rng=None: None)

    def test_duplicate_alias_rejected(self):
        with pytest.raises(SchemeAlreadyRegisteredError):
            register_scheme("fresh-name", aliases=("dph-swp",))(
                lambda schema, key, rng=None: None
            )
        assert "fresh-name" not in available_schemes()
