"""Cross-scheme property-based tests.

Hypothesis drives every implemented database PH through randomly generated
relations and exact-select workloads and asserts the invariants the rest of
the system depends on:

* decryption inverts encryption (Definition 1.1's ``D(E(x)) = x``);
* the homomorphism property holds after client-side filtering;
* the server never returns fewer tuples than the plaintext answer (no false
  negatives) and never more than the whole table;
* ciphertext sizes depend only on the shape of the data, not on its values
  (the property the equal-size admissibility condition of the games needs).
"""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import SearchableSelectDph, VariableWidthSelectDph, check_homomorphism
from repro.crypto.keys import SecretKey
from repro.crypto.rng import DeterministicRng
from repro.relational import Relation, RelationSchema, Selection
from repro.relational.engine import evaluate
from repro.schemes import (
    BucketizationConfig,
    DamianiDph,
    DeterministicDph,
    HacigumusDph,
    PlaintextDph,
)

SCHEMA = RelationSchema.parse("Emp(name:string[12], dept:string[5], salary:int[5])")

DEPARTMENTS = ("HR", "IT", "OPS", "FIN")

rows_strategy = st.lists(
    st.tuples(
        st.text(alphabet="abcdefghij", min_size=1, max_size=10),
        st.sampled_from(DEPARTMENTS),
        st.integers(min_value=0, max_value=9999),
    ),
    min_size=1,
    max_size=10,
)

scheme_names = st.sampled_from(
    ["swp", "index", "variable", "bucketization", "damiani", "deterministic", "plaintext"]
)


def build_scheme(name: str, seed: int = 99):
    key = SecretKey.generate(rng=DeterministicRng(seed))
    rng = DeterministicRng(seed + 1)
    if name == "swp":
        return SearchableSelectDph(SCHEMA, key, backend="swp", rng=rng)
    if name == "index":
        return SearchableSelectDph(SCHEMA, key, backend="index", rng=rng)
    if name == "variable":
        return VariableWidthSelectDph(SCHEMA, key, rng=rng)
    if name == "bucketization":
        config = BucketizationConfig.uniform(SCHEMA, num_buckets=8, minimum=0, maximum=9999)
        return HacigumusDph(SCHEMA, key, config=config, rng=rng)
    if name == "damiani":
        return DamianiDph(SCHEMA, key, num_hash_values=16, rng=rng)
    if name == "deterministic":
        return DeterministicDph(SCHEMA, key, rng=rng)
    return PlaintextDph(SCHEMA, key, rng=rng)


@given(rows=rows_strategy, scheme_name=scheme_names)
@settings(max_examples=40, deadline=None)
def test_property_decryption_inverts_encryption(rows, scheme_name):
    relation = Relation.from_rows(SCHEMA, rows)
    scheme = build_scheme(scheme_name)
    assert scheme.decrypt_relation(scheme.encrypt_relation(relation)) == relation


@given(rows=rows_strategy, scheme_name=scheme_names, department=st.sampled_from(DEPARTMENTS))
@settings(max_examples=40, deadline=None)
def test_property_homomorphism_after_filtering(rows, scheme_name, department):
    relation = Relation.from_rows(SCHEMA, rows)
    scheme = build_scheme(scheme_name)
    report = check_homomorphism(scheme, relation, [Selection.equals("dept", department)])
    assert report.holds


@given(rows=rows_strategy, scheme_name=scheme_names, department=st.sampled_from(DEPARTMENTS))
@settings(max_examples=40, deadline=None)
def test_property_no_false_negatives_and_bounded_results(rows, scheme_name, department):
    relation = Relation.from_rows(SCHEMA, rows)
    scheme = build_scheme(scheme_name)
    query = Selection.equals("dept", department)
    encrypted = scheme.encrypt_relation(relation)
    result = scheme.server_evaluator().evaluate(scheme.encrypt_query(query), encrypted)
    expected = evaluate(query, relation)
    assert len(expected) <= len(result.matching) <= len(relation)


# Fixed-shape rows: every name has 8 characters, every department 3 and every
# salary 4 digits, so two relations of equal cardinality have byte-identical
# *shape* even though their values differ -- the admissibility condition of
# the games (Definition 1.2 only compares equal-length plaintexts).
fixed_shape_rows = st.lists(
    st.tuples(
        st.text(alphabet="abcdefghij", min_size=8, max_size=8),
        st.sampled_from(["OPS", "FIN", "LAW", "ITS"]),
        st.integers(min_value=1000, max_value=9999),
    ),
    min_size=1,
    max_size=8,
)


@given(
    rows_a=fixed_shape_rows,
    rows_b=fixed_shape_rows,
    scheme_name=st.sampled_from(["swp", "index", "variable"]),
)
@settings(max_examples=25, deadline=None)
def test_property_ciphertext_size_depends_only_on_shape(rows_a, rows_b, scheme_name):
    """Equal-shape tables of equal size produce equal-size ciphertexts."""
    size = min(len(rows_a), len(rows_b))
    relation_a = Relation.from_rows(SCHEMA, rows_a[:size])
    relation_b = Relation.from_rows(SCHEMA, rows_b[:size])
    scheme = build_scheme(scheme_name)
    size_a = scheme.encrypt_relation(relation_a).size_in_bytes()
    size_b = scheme.encrypt_relation(relation_b).size_in_bytes()
    assert size_a == size_b
