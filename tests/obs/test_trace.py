"""Trace primitives: ids, spans, the ambient trace, retention buffers."""

from __future__ import annotations

import threading

import pytest

from repro.obs import (
    TRACE_ID_SIZE,
    SlowQueryLog,
    Span,
    Trace,
    TraceBuffer,
    current_trace,
    current_trace_id,
    new_trace_id,
    span,
    use_trace,
)


class TestTrace:
    def test_ids_are_sixteen_random_bytes(self):
        one, two = new_trace_id(), new_trace_id()
        assert len(one) == TRACE_ID_SIZE == 16
        assert one != two

    def test_short_id_is_rejected(self):
        with pytest.raises(ValueError, match="16 bytes"):
            Trace(b"short")

    def test_span_context_manager_times_the_block(self):
        trace = Trace(new_trace_id())
        with trace.span("work", relation="Emp") as entry:
            entry.annotations["rows"] = 3
        (recorded,) = trace.spans
        assert recorded.name == "work"
        assert recorded.annotations == {"relation": "Emp", "rows": 3}
        assert recorded.start_s > 0
        assert recorded.duration_s >= 0

    def test_record_appends_pre_timed_spans(self):
        trace = Trace(new_trace_id())
        trace.record("shard.request", 100.0, 0.25, shard_id="s0")
        trace.record("shard.request", 100.1, -1.0, shard_id="s1")
        spans = trace.spans
        assert spans[0].duration_s == 0.25
        assert spans[1].duration_s == 0.0  # clamped, never negative

    def test_as_dict_sorts_spans_and_reports_extent(self):
        trace = Trace(new_trace_id())
        trace.record("late", 10.0, 0.5)
        trace.record("early", 9.0, 0.1)
        payload = trace.as_dict()
        assert [s["name"] for s in payload["spans"]] == ["early", "late"]
        assert payload["duration_s"] == pytest.approx(1.5)  # 9.0 .. 10.5
        assert payload["trace_id"] == trace.trace_id.hex()


class TestAmbientTrace:
    def test_untraced_by_default(self):
        assert current_trace() is None
        assert current_trace_id() is None

    def test_use_trace_binds_and_restores(self):
        trace = Trace(new_trace_id())
        with use_trace(trace):
            assert current_trace() is trace
            assert current_trace_id() == trace.trace_id
        assert current_trace() is None

    def test_use_trace_accepts_none(self):
        with use_trace(None):
            assert current_trace() is None

    def test_nested_bind_shadows_and_unwinds(self):
        outer, inner = Trace(new_trace_id()), Trace(new_trace_id())
        with use_trace(outer):
            with use_trace(inner):
                assert current_trace() is inner
            assert current_trace() is outer

    def test_module_span_records_on_the_ambient_trace(self):
        trace = Trace(new_trace_id())
        with use_trace(trace):
            with span("access.index", examined=7):
                pass
        (recorded,) = trace.spans
        assert recorded.name == "access.index"
        assert recorded.annotations == {"examined": 7}

    def test_module_span_is_a_noop_when_untraced(self):
        with span("ignored") as entry:
            assert isinstance(entry, Span)
            entry.annotations["still"] = "settable"
        assert current_trace() is None

    def test_threads_do_not_inherit_the_binding(self):
        seen = []
        trace = Trace(new_trace_id())

        def probe():
            seen.append(current_trace())

        with use_trace(trace):
            thread = threading.Thread(target=probe)
            thread.start()
            thread.join()
        assert seen == [None]


class TestTraceBuffer:
    def test_records_and_fetches_by_id(self):
        buffer = TraceBuffer()
        trace = Trace(new_trace_id())
        trace.record("op", 1.0, 0.1)
        buffer.record(trace)
        fetched = buffer.get(trace.trace_id)
        assert fetched is not None
        assert fetched["spans"][0]["name"] == "op"
        assert buffer.get(new_trace_id()) is None

    def test_same_id_merges_spans(self):
        buffer = TraceBuffer()
        tid = new_trace_id()
        first, second = Trace(tid), Trace(tid)
        first.record("client", 1.0, 0.2)
        second.record("server", 1.05, 0.1)
        buffer.record(first)
        buffer.record(second)
        assert len(buffer) == 1
        fetched = buffer.get(tid)
        assert sorted(s["name"] for s in fetched["spans"]) == ["client", "server"]

    def test_bounded_eviction_drops_the_oldest(self):
        buffer = TraceBuffer(max_traces=2)
        traces = [Trace(new_trace_id()) for _ in range(3)]
        for trace in traces:
            buffer.record(trace)
        assert len(buffer) == 2
        assert buffer.get(traces[0].trace_id) is None
        assert buffer.get(traces[2].trace_id) is not None

    def test_recent_is_newest_first(self):
        buffer = TraceBuffer()
        traces = [Trace(new_trace_id()) for _ in range(3)]
        for trace in traces:
            buffer.record(trace)
        recent = buffer.recent(limit=2)
        assert [t["trace_id"] for t in recent] == [
            traces[2].trace_id.hex(),
            traces[1].trace_id.hex(),
        ]

    def test_zero_capacity_is_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            TraceBuffer(max_traces=0)


class TestSlowQueryLog:
    def _trace_lasting(self, seconds: float) -> Trace:
        trace = Trace(new_trace_id())
        trace.record("session.select", 100.0, seconds)
        return trace

    def test_fast_traces_are_not_logged(self):
        log = SlowQueryLog(threshold_s=0.5)
        assert log.observe(self._trace_lasting(0.1)) is False
        assert len(log) == 0

    def test_slow_traces_are_logged_with_their_anatomy(self):
        log = SlowQueryLog(threshold_s=0.5)
        trace = self._trace_lasting(0.9)
        assert log.observe(trace) is True
        (entry,) = log.entries()
        assert entry["trace_id"] == trace.trace_id.hex()
        assert entry["duration_s"] == pytest.approx(0.9)
        assert entry["spans"] == ["session.select"]

    def test_entries_are_bounded_and_newest_first(self):
        log = SlowQueryLog(threshold_s=0.0, max_entries=2)
        traces = [self._trace_lasting(0.1 * (i + 1)) for i in range(3)]
        for trace in traces:
            log.observe(trace)
        entries = log.entries()
        assert len(entries) == 2
        assert entries[0]["trace_id"] == traces[2].trace_id.hex()
