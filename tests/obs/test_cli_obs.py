"""The observability exposition CLI: ``repro stats`` and ``repro trace``.

Covers the surfaces the obs plane advertises: the human summary and the
Prometheus text exposition of ``stats``, fleet-wide merging over
``cluster://``, trace listing, cross-shard ``--trace-id`` assembly, and
the not-found / unreachable error paths.
"""

from __future__ import annotations

import re

import pytest

from repro.api import EncryptedDatabase
from repro.cli import main
from repro.net import ThreadedTcpServer


@pytest.fixture
def provider():
    with ThreadedTcpServer() as server:
        yield server


def _drive(url: str, rows: int = 12, selects: int = 3) -> str:
    """Run a small workload; returns the last operation's trace id."""
    with EncryptedDatabase.connect(url) as db:
        db.create_table(
            "Obs(name:string[10], value:int[4])",
            rows=[(f"n{i}", i) for i in range(rows)],
        )
        for i in range(selects):
            db.select(f"SELECT * FROM Obs WHERE name = 'n{i}'")
        trace_id = db.last_trace_id
    assert trace_id is not None
    return trace_id


class TestStatsCommand:
    def test_human_summary_reports_counters_and_percentiles(self, provider, capsys):
        url = f"tcp://127.0.0.1:{provider.port}"
        _drive(url)
        exit_code = main(["stats", url])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "metrics from 1/1 shard(s)" in captured.out
        assert "provider_op_seconds" in captured.out
        assert "latency (seconds):" in captured.out
        assert "p99=" in captured.out

    def test_prometheus_exposition_parses(self, provider, capsys):
        url = f"tcp://127.0.0.1:{provider.port}"
        _drive(url)
        exit_code = main(["stats", url, "--prometheus"])
        captured = capsys.readouterr()
        assert exit_code == 0
        lines = captured.out.splitlines()
        assert lines
        sample = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*(\{.*\})? [-+0-9.e]+$")
        for line in lines:
            if line.startswith("# TYPE "):
                assert line.split()[-1] in ("counter", "gauge", "histogram")
            elif line:
                assert sample.match(line), line
        # Cumulative histogram series end at +Inf, and summed per metric
        # name the +Inf buckets equal the _count total.
        inf_totals: dict[str, float] = {}
        for line in lines:
            if 'le="+Inf"' in line:
                name = line.split("{")[0][: -len("_bucket")]
                inf_totals[name] = inf_totals.get(name, 0.0) + float(
                    line.rsplit(" ", 1)[1]
                )
        assert inf_totals
        for name, total in inf_totals.items():
            count_lines = [
                l for l in lines if l.startswith(f"{name}_count")
            ]
            assert count_lines
            assert sum(float(l.rsplit(" ", 1)[1]) for l in count_lines) == total

    def test_cluster_url_merges_the_fleet(self, capsys):
        with ThreadedTcpServer() as one, ThreadedTcpServer() as two:
            url = f"cluster://127.0.0.1:{one.port},127.0.0.1:{two.port}"
            _drive(url, rows=20)
            exit_code = main(["stats", url])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "metrics from 2/2 shard(s)" in captured.out
        # Both shards stored a slice, so the merged relation gauge is the
        # fleet-wide total, larger than either shard alone.
        gauge_lines = [
            line for line in captured.out.splitlines()
            if "relation_tuples" in line or "provider_op_seconds" in line
        ]
        assert gauge_lines

    def test_unreachable_shard_fails_the_scrape(self, provider, capsys):
        url = f"cluster://127.0.0.1:{provider.port},127.0.0.1:1"
        exit_code = main(["stats", url, "--timeout", "2"])
        captured = capsys.readouterr()
        assert exit_code == 1
        assert "DOWN" in captured.err

    def test_bad_cluster_url_is_a_usage_error(self, capsys):
        assert main(["stats", "cluster://"]) == 2


class TestTraceCommand:
    def test_recent_traces_are_listed(self, provider, capsys):
        url = f"tcp://127.0.0.1:{provider.port}"
        _drive(url)
        exit_code = main(["trace", url])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "recent trace(s)" in captured.out
        assert "server.dispatch" in captured.out

    def test_trace_id_assembles_provider_spans(self, provider, capsys):
        url = f"tcp://127.0.0.1:{provider.port}"
        trace_id = _drive(url)
        exit_code = main(["trace", url, "--trace-id", trace_id])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert f"trace {trace_id}" in captured.out
        assert "provider." in captured.out

    def test_trace_id_assembly_spans_a_fleet(self, capsys):
        with ThreadedTcpServer() as one, ThreadedTcpServer() as two:
            url = f"cluster://127.0.0.1:{one.port},127.0.0.1:{two.port}"
            trace_id = _drive(url, rows=20)
            exit_code = main(["trace", url, "--trace-id", trace_id])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert f"trace {trace_id}" in captured.out

    def test_unknown_trace_id_is_not_found(self, provider, capsys):
        url = f"tcp://127.0.0.1:{provider.port}"
        _drive(url)
        exit_code = main(["trace", url, "--trace-id", "00" * 16])
        captured = capsys.readouterr()
        assert exit_code == 1
        assert "not found on any shard" in captured.out

    def test_non_hex_trace_id_is_a_usage_error(self, provider, capsys):
        url = f"tcp://127.0.0.1:{provider.port}"
        exit_code = main(["trace", url, "--trace-id", "zz"])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "not hex" in captured.err

    def test_unreachable_shard_fails_the_poll(self, provider, capsys):
        url = f"cluster://127.0.0.1:{provider.port},127.0.0.1:1"
        exit_code = main(["trace", url, "--timeout", "2"])
        captured = capsys.readouterr()
        assert exit_code == 1
        assert "DOWN" in captured.err
