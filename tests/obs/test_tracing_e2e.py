"""End-to-end observability: traces across layers, fleets and the CLI.

Covers the PR's acceptance path (a traced exact select on a two-shard
indexed fleet assembling session, proxy, router, per-shard, dispatcher and
access-method spans into one trace), the protocol-negotiation edges (v1 and
pre-trace v2 providers keep working, their spans simply absent), the
old-name compatibility of the ``stats`` control operation, and the
``repro stats`` / ``repro trace`` subcommands over a live socket.
"""

from __future__ import annotations

import pytest

from repro.api import EncryptedDatabase
from repro.cli import main
from repro.net import ThreadedTcpServer
from repro.obs import histogram_summaries
from repro.outsourcing import OutsourcedDatabaseServer
from repro.outsourcing.audit import ServerAuditLog
from repro.outsourcing.protocol import PROTOCOL_V1, PROTOCOL_V2

EMP_DECL = "Emp(name:string[14], dept:string[5], salary:int[6])"
ROWS = [(f"emp{i}", "HR" if i % 2 else "IT", 1000 + i) for i in range(24)]


class V1OnlyServer(OutsourcedDatabaseServer):
    """A provider from before the v2 envelope existed."""

    SUPPORTED_PROTOCOL_VERSIONS = (PROTOCOL_V1,)


class PreTraceServer(OutsourcedDatabaseServer):
    """A v2 provider from before trace ids rode the envelope."""

    SUPPORTED_PROTOCOL_VERSIONS = (PROTOCOL_V1, PROTOCOL_V2)


def _span_names(trace: dict) -> set[str]:
    return {span["name"] for span in trace["spans"]}


class TestInProcessTracing:
    def test_traced_select_assembles_session_and_provider_spans(
        self, secret_key, rng
    ):
        with EncryptedDatabase.open(secret_key, rng=rng, index=True) as db:
            db.create_table(EMP_DECL, rows=ROWS)
            result = db.select("SELECT * FROM Emp WHERE dept = 'HR'")
            assert len(result.relation) == 12
            trace = db.fetch_trace()
        assert trace is not None
        assert trace["trace_id"] == db.last_trace_id
        names = _span_names(trace)
        assert "session.select" in names
        assert any(name.startswith("provider.") for name in names)
        assert any(name.startswith("access.") for name in names)
        # spans come out sorted by wall-clock start with sane durations
        starts = [span["start_s"] for span in trace["spans"]]
        assert starts == sorted(starts)
        assert all(span["duration_s"] >= 0 for span in trace["spans"])

    def test_each_operation_gets_its_own_trace(self, secret_key, rng):
        with EncryptedDatabase.open(secret_key, rng=rng) as db:
            db.create_table(EMP_DECL, rows=ROWS)
            db.select("SELECT * FROM Emp WHERE dept = 'HR'")
            first = db.last_trace_id
            db.insert("Emp", {"name": "Zoe", "dept": "HR", "salary": 1})
            second = db.last_trace_id
            assert first != second
            # both are still fetchable from the bounded buffer
            assert db.fetch_trace(first) is not None
            assert db.fetch_trace(second) is not None
            names = _span_names(db.fetch_trace(second))
            assert "session.insert" in names

    def test_unknown_trace_id_returns_none(self, secret_key, rng):
        with EncryptedDatabase.open(secret_key, rng=rng) as db:
            db.create_table(EMP_DECL, rows=ROWS)
            assert db.fetch_trace("00" * 16) is None

    def test_session_metrics_report_per_op_kind_latency(self, secret_key, rng):
        with EncryptedDatabase.open(secret_key, rng=rng) as db:
            db.create_table(EMP_DECL, rows=ROWS)
            for _ in range(3):
                db.select("SELECT * FROM Emp WHERE dept = 'HR'")
            db.insert("Emp", {"name": "Zoe", "dept": "HR", "salary": 1})
            summaries = histogram_summaries(db.metrics_snapshot())
        by_op = {
            s["labels"]["op_kind"]: s
            for s in summaries
            if s["name"] == "session_op_seconds"
        }
        assert by_op["select"]["count"] == 3
        assert by_op["insert"]["count"] == 1
        for summary in by_op.values():
            assert summary["p50"] <= summary["p95"] <= summary["p99"]


class TestTcpTracing:
    def test_remote_select_adds_proxy_and_dispatch_spans(self, secret_key, rng):
        with ThreadedTcpServer() as server:
            url = f"tcp://127.0.0.1:{server.port}"
            with EncryptedDatabase.connect(url, secret_key, rng=rng) as db:
                db.create_table(EMP_DECL, rows=ROWS)
                assert len(db.select("SELECT * FROM Emp WHERE dept = 'HR'").relation) == 12
                trace = db.fetch_trace()
                names = _span_names(trace)
                assert "session.select" in names
                assert "proxy.request" in names
                assert "server.dispatch" in names
                assert any(name.startswith("provider.") for name in names)
                db.drop_table("Emp")

    def test_stats_control_op_keeps_the_old_names(self, secret_key, rng):
        with ThreadedTcpServer() as server:
            url = f"tcp://127.0.0.1:{server.port}"
            with EncryptedDatabase.connect(url, secret_key, rng=rng) as db:
                db.create_table(EMP_DECL, rows=ROWS)
                db.select("SELECT * FROM Emp WHERE dept = 'HR'")
                stats = db.server.server_stats()["stats"]
                db.drop_table("Emp")
        for name in (
            "connections_total",
            "connections_active",
            "frames_received",
            "frames_sent",
            "bytes_received",
            "bytes_sent",
            "envelope_frames",
            "control_frames",
            "framing_errors",
        ):
            assert name in stats
        assert stats["connections_total"] >= 1
        assert stats["envelope_frames"] > 0

    def test_metrics_control_op_serves_snapshot_and_prometheus(
        self, secret_key, rng
    ):
        with ThreadedTcpServer() as server:
            url = f"tcp://127.0.0.1:{server.port}"
            with EncryptedDatabase.connect(url, secret_key, rng=rng) as db:
                db.create_table(EMP_DECL, rows=ROWS)
                db.select("SELECT * FROM Emp WHERE dept = 'HR'")
                snapshot = db.server.metrics()["metrics"]
                text = db.server.metrics(format="prometheus")["prometheus"]
                db.drop_table("Emp")
        histogram_names = {h["name"] for h in snapshot["histograms"]}
        assert "server_dispatch_queue_seconds" in histogram_names
        assert "provider_op_seconds" in histogram_names
        assert any(h["count"] > 0 for h in snapshot["histograms"])
        assert "# TYPE" in text
        assert "server_envelope_frames" in text

    def test_audit_counters_ride_the_metrics_plane(self, secret_key, rng):
        capped = OutsourcedDatabaseServer(audit_log=ServerAuditLog(max_events=4))
        with ThreadedTcpServer(capped) as server:
            url = f"tcp://127.0.0.1:{server.port}"
            with EncryptedDatabase.connect(url, secret_key, rng=rng) as db:
                db.create_table(EMP_DECL, rows=ROWS)
                for _ in range(4):
                    db.select("SELECT * FROM Emp WHERE dept = 'HR'")
                snapshot = db.server.metrics()["metrics"]
                db.drop_table("Emp")
        gauges = {
            (g["name"], g["labels"].get("kind")): g["value"]
            for g in snapshot["gauges"]
        }
        assert ("audit_events_dropped", None) in gauges
        # the tiny ring buffer overflowed, and the drop counter says so
        assert gauges[("audit_events_dropped", None)] > 0
        assert any(name == "audit_events" for name, _kind in gauges)


class TestNegotiationEdges:
    def test_v1_provider_serves_untraced(self, secret_key, rng):
        db = EncryptedDatabase.open(secret_key, server=V1OnlyServer(), rng=rng)
        try:
            db.create_table(EMP_DECL, rows=ROWS)
            assert len(db.select("SELECT * FROM Emp WHERE dept = 'HR'").relation) == 12
            trace = db.fetch_trace()
            # the session still traces itself; the provider speaks no v3
            assert "session.select" in _span_names(trace)
        finally:
            db.close()

    def test_pre_trace_v2_provider_over_tcp(self, secret_key, rng):
        with ThreadedTcpServer(PreTraceServer()) as server:
            url = f"tcp://127.0.0.1:{server.port}"
            with EncryptedDatabase.connect(url, secret_key, rng=rng) as db:
                db.create_table(EMP_DECL, rows=ROWS)
                assert len(db.select("SELECT * FROM Emp WHERE dept = 'HR'").relation) == 12
                trace = db.fetch_trace()
                names = _span_names(trace)
                # client-side spans exist; the provider never saw a trace id
                assert "session.select" in names
                assert "proxy.request" in names
                assert "server.dispatch" not in names
                db.drop_table("Emp")

    def test_mixed_fleet_traces_only_the_speakers(self, secret_key, rng):
        with ThreadedTcpServer() as modern, ThreadedTcpServer(PreTraceServer()) as old:
            url = (
                f"cluster://127.0.0.1:{modern.port},127.0.0.1:{old.port}"
            )
            with EncryptedDatabase.connect(url, secret_key, rng=rng) as db:
                db.create_table(EMP_DECL, rows=ROWS)
                result = db.select("SELECT * FROM Emp WHERE dept = 'HR'")
                assert len(result.relation) == 12
                trace = db.fetch_trace()
                names = _span_names(trace)
                assert "session.select" in names
                assert "router.scatter" in names
                # both shards answered (client-side spans for each)...
                shard_spans = [
                    s for s in trace["spans"] if s["name"] == "shard.request"
                ]
                modern_id = f"tcp://127.0.0.1:{modern.port}"
                old_id = f"tcp://127.0.0.1:{old.port}"
                assert {s["annotations"]["shard_id"] for s in shard_spans} == {
                    modern_id,
                    old_id,
                }
                # ...but only the modern shard recorded server-side spans
                dispatch_shards = {
                    s["annotations"].get("shard_id")
                    for s in trace["spans"]
                    if s["name"] == "server.dispatch"
                }
                assert dispatch_shards == {modern_id}
                db.drop_table("Emp")


class TestClusterAcceptance:
    def test_traced_indexed_select_on_a_two_shard_fleet(self, secret_key, rng):
        with ThreadedTcpServer() as one, ThreadedTcpServer() as two:
            url = f"cluster://127.0.0.1:{one.port},127.0.0.1:{two.port}"
            with EncryptedDatabase.connect(
                url, secret_key, rng=rng, index=True
            ) as db:
                db.create_table(EMP_DECL, rows=ROWS)
                assert db.index_active
                result = db.select("SELECT * FROM Emp WHERE dept = 'HR'")
                assert len(result.relation) == 12
                trace = db.fetch_trace()
                names = _span_names(trace)
                # one trace, spans from every layer
                assert "session.select" in names
                assert "router.scatter" in names
                assert "shard.request" in names
                assert "server.dispatch" in names
                assert any(name.startswith("provider.") for name in names)
                assert any(name.startswith("access.") for name in names)
                # wall-clock ordering is monotonic and durations sane
                starts = [s["start_s"] for s in trace["spans"]]
                assert starts == sorted(starts)
                assert all(s["duration_s"] >= 0 for s in trace["spans"])
                session = next(
                    s for s in trace["spans"] if s["name"] == "session.select"
                )
                # the trace extent covers the session span (modulo the tiny
                # wall-vs-monotonic measurement skew)
                assert session["duration_s"] > 0
                assert trace["duration_s"] >= session["duration_s"] * 0.99
                db.drop_table("Emp")

    def test_fleet_metrics_merge_per_shard_histograms(self, secret_key, rng):
        with ThreadedTcpServer() as one, ThreadedTcpServer() as two:
            url = f"cluster://127.0.0.1:{one.port},127.0.0.1:{two.port}"
            with EncryptedDatabase.connect(url, secret_key, rng=rng) as db:
                db.create_table(EMP_DECL, rows=ROWS)
                for _ in range(2):
                    db.select("SELECT * FROM Emp WHERE dept = 'HR'")
                snapshot = db.metrics_snapshot()
                db.drop_table("Emp")
        by_name = {}
        for entry in snapshot["histograms"]:
            by_name.setdefault(entry["name"], []).append(entry)
        # per-shard latency histograms, one per shard id (satellite: the
        # executor's elapsed_s feeds cluster_shard_seconds)
        shard_ids = {
            e["labels"]["shard_id"] for e in by_name["cluster_shard_seconds"]
        }
        assert len(shard_ids) == 2
        assert all(shard_id.startswith("tcp://") for shard_id in shard_ids)
        assert all(e["count"] > 0 for e in by_name["cluster_shard_seconds"])
        # provider-side op histograms from BOTH shards merged into one entry
        assert any(e["count"] > 0 for e in by_name["provider_op_seconds"])
        # session-side per-op-kind summary is available fleet-wide
        assert any(e["count"] > 0 for e in by_name["session_op_seconds"])
        counters = {c["name"] for c in snapshot["counters"]}
        assert "cluster_scatter_reads_total" in counters


class TestCliObservability:
    @pytest.fixture
    def serving(self, secret_key, rng):
        with ThreadedTcpServer() as server:
            url = f"tcp://127.0.0.1:{server.port}"
            with EncryptedDatabase.connect(url, secret_key, rng=rng) as db:
                db.create_table(EMP_DECL, rows=ROWS)
                db.select("SELECT * FROM Emp WHERE dept = 'HR'")
                yield url, db
                db.drop_table("Emp")

    def test_repro_stats_summarizes_latency(self, serving, capsys):
        url, _db = serving
        assert main(["stats", url]) == 0
        out = capsys.readouterr().out
        assert "metrics from 1/1 shard(s)" in out
        assert "server_envelope_frames" in out
        assert "provider_op_seconds" in out
        assert "p50=" in out and "p95=" in out and "p99=" in out

    def test_repro_stats_prometheus(self, serving, capsys):
        url, _db = serving
        assert main(["stats", url, "--prometheus"]) == 0
        out = capsys.readouterr().out
        assert "# TYPE server_envelope_frames counter" in out
        for line in out.splitlines():
            if line.startswith("#"):
                continue
            float(line.rsplit(" ", 1)[1])

    def test_repro_trace_lists_and_assembles(self, serving, capsys):
        url, db = serving
        assert main(["trace", url]) == 0
        out = capsys.readouterr().out
        assert "recent trace(s)" in out
        assert "server.dispatch" in out
        assert main(["trace", url, "--trace-id", db.last_trace_id]) == 0
        out = capsys.readouterr().out
        assert f"trace {db.last_trace_id}:" in out
        assert "server.dispatch" in out

    def test_repro_trace_unknown_id(self, serving, capsys):
        url, _db = serving
        assert main(["trace", url, "--trace-id", "ff" * 16]) == 1
        out = capsys.readouterr().out
        assert "not found" in out

    def test_bad_trace_id_is_a_usage_error(self, serving, capsys):
        url, _db = serving
        assert main(["trace", url, "--trace-id", "zz"]) == 2

    def test_unreachable_provider_reports_down(self, capsys):
        assert main(["stats", "tcp://127.0.0.1:1", "--timeout", "0.5"]) == 1
        err = capsys.readouterr().err
        assert "DOWN" in err
