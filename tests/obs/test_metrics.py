"""The metrics core: registries, percentiles, merging and exposition."""

from __future__ import annotations

import threading

import pytest

from repro.obs import (
    BUCKET_BOUNDS,
    MetricsRegistry,
    aggregate_snapshot,
    histogram_summaries,
    merge_snapshots,
    render_prometheus,
    snapshot_delta,
)
from repro.obs.metrics import percentile_from_buckets


class TestRegistry:
    def test_counter_get_or_create_is_stable(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests_total", op_kind="select")
        counter.inc()
        counter.inc(2)
        assert registry.counter("requests_total", op_kind="select") is counter
        assert counter.value == 3

    def test_label_sets_are_distinct_instruments(self):
        registry = MetricsRegistry()
        registry.counter("ops", op_kind="select").inc()
        registry.counter("ops", op_kind="insert").inc(5)
        assert registry.counter("ops", op_kind="select").value == 1
        assert registry.counter("ops", op_kind="insert").value == 5

    def test_label_order_does_not_matter(self):
        registry = MetricsRegistry()
        one = registry.counter("ops", a="1", b="2")
        two = registry.counter("ops", b="2", a="1")
        assert one is two

    def test_kind_mismatch_raises(self):
        registry = MetricsRegistry()
        registry.counter("thing")
        with pytest.raises(ValueError, match="is a counter"):
            registry.gauge("thing")
        with pytest.raises(ValueError, match="is a counter"):
            registry.histogram("thing")

    def test_counters_only_go_up(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError, match="counters only go up"):
            registry.counter("n").inc(-1)

    def test_gauge_moves_both_ways(self):
        gauge = MetricsRegistry().gauge("active")
        gauge.inc()
        gauge.inc()
        gauge.dec()
        assert gauge.value == 1
        gauge.set(17)
        assert gauge.value == 17

    def test_snapshot_shape(self):
        registry = MetricsRegistry()
        registry.counter("c", x="1").inc()
        registry.gauge("g").set(2)
        registry.histogram("h").observe(0.001)
        snapshot = registry.snapshot()
        assert snapshot["bucket_bounds"] == list(BUCKET_BOUNDS)
        assert snapshot["counters"] == [{"name": "c", "labels": {"x": "1"}, "value": 1}]
        assert snapshot["gauges"] == [{"name": "g", "labels": {}, "value": 2}]
        (hist,) = snapshot["histograms"]
        assert hist["count"] == 1
        assert hist["sum"] == pytest.approx(0.001)
        assert sum(hist["buckets"]) == 1
        assert len(hist["buckets"]) == len(BUCKET_BOUNDS) + 1

    def test_concurrent_increments_do_not_lose_updates(self):
        registry = MetricsRegistry()
        counter = registry.counter("hammered")
        histogram = registry.histogram("timed")
        rounds = 2_000

        def worker():
            for _ in range(rounds):
                counter.inc()
                histogram.observe(0.0001)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 8 * rounds
        assert histogram.count == 8 * rounds


class TestPercentiles:
    def test_empty_histogram_reports_zero(self):
        histogram = MetricsRegistry().histogram("h")
        assert histogram.percentile(0.5) == 0.0

    def test_quantile_bounds_are_validated(self):
        with pytest.raises(ValueError, match="quantile"):
            percentile_from_buckets([1] * (len(BUCKET_BOUNDS) + 1), 1.5)

    def test_percentiles_bracket_the_observations(self):
        histogram = MetricsRegistry().histogram("h")
        for _ in range(95):
            histogram.observe(0.001)
        for _ in range(5):
            histogram.observe(0.5)
        p50 = histogram.percentile(0.50)
        p99 = histogram.percentile(0.99)
        # p50 lands in the bucket holding 1ms, p99 in the one holding 500ms.
        assert 0.0005 <= p50 <= 0.002
        assert 0.3 <= p99 <= 0.7
        assert p50 < p99

    def test_overflow_bucket_reports_the_top_bound(self):
        histogram = MetricsRegistry().histogram("h")
        histogram.observe(10_000.0)
        assert histogram.percentile(0.99) == BUCKET_BOUNDS[-1]


class TestMergeAndExposition:
    def test_merge_sums_counters_and_buckets(self):
        one, two = MetricsRegistry(), MetricsRegistry()
        one.counter("ops", op_kind="select").inc(2)
        two.counter("ops", op_kind="select").inc(3)
        two.counter("ops", op_kind="insert").inc()
        one.histogram("lat").observe(0.001)
        two.histogram("lat").observe(0.001)
        merged = merge_snapshots(one.snapshot(), two.snapshot())
        by_key = {
            (c["name"], c["labels"].get("op_kind")): c["value"]
            for c in merged["counters"]
        }
        assert by_key[("ops", "select")] == 5
        assert by_key[("ops", "insert")] == 1
        (hist,) = merged["histograms"]
        assert hist["count"] == 2
        assert sum(hist["buckets"]) == 2

    def test_merge_tolerates_empty_snapshots(self):
        merged = merge_snapshots({}, None, MetricsRegistry().snapshot())
        assert merged["counters"] == []

    def test_summaries_expose_p50_p95_p99(self):
        registry = MetricsRegistry()
        for _ in range(100):
            registry.histogram("lat", op_kind="select").observe(0.002)
        (summary,) = histogram_summaries(registry.snapshot())
        assert summary["name"] == "lat"
        assert summary["labels"] == {"op_kind": "select"}
        assert summary["count"] == 100
        assert summary["mean"] == pytest.approx(0.002)
        for quantile in ("p50", "p95", "p99"):
            assert 0.001 <= summary[quantile] <= 0.004

    def test_prometheus_rendering_is_parseable(self):
        registry = MetricsRegistry()
        registry.counter("server_frames_total", direction="in").inc(7)
        registry.gauge("connections_active").set(3)
        registry.histogram("op_seconds", op_kind="select").observe(0.01)
        text = registry.render_prometheus()
        assert text.endswith("\n")
        lines = text.splitlines()
        assert "# TYPE server_frames_total counter" in lines
        assert 'server_frames_total{direction="in"} 7' in lines
        assert "connections_active 3" in lines
        # histogram series: cumulative buckets, +Inf, _sum, _count
        bucket_lines = [l for l in lines if l.startswith("op_seconds_bucket")]
        assert len(bucket_lines) == len(BUCKET_BOUNDS) + 1
        assert any('le="+Inf"' in l for l in bucket_lines)
        assert bucket_lines[-1].endswith(" 1")
        assert 'op_seconds_count{op_kind="select"} 1' in lines
        # every sample line is "name{labels} value" with a numeric value
        for line in lines:
            if line.startswith("#"):
                continue
            float(line.rsplit(" ", 1)[1])

    def test_label_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.counter("c", path='a"b\\c\nd').inc()
        text = registry.render_prometheus()
        assert '\\"' in text and "\\\\" in text and "\\n" in text

    def test_aggregate_snapshot_sees_live_registries(self):
        registry = MetricsRegistry()
        registry.counter("aggregate_probe_total").inc(41)
        merged = aggregate_snapshot()
        probes = [
            c for c in merged["counters"] if c["name"] == "aggregate_probe_total"
        ]
        assert probes and probes[0]["value"] >= 41


class TestSnapshotDelta:
    def test_counter_delta_is_the_window_activity(self):
        registry = MetricsRegistry()
        registry.counter("ops_total", op_kind="select").inc(5)
        before = registry.snapshot()
        registry.counter("ops_total", op_kind="select").inc(3)
        delta = snapshot_delta(before, registry.snapshot())
        entries = [c for c in delta["counters"] if c["name"] == "ops_total"]
        assert entries == [
            {"name": "ops_total", "labels": {"op_kind": "select"}, "value": 3}
        ]

    def test_idle_instruments_are_dropped(self):
        registry = MetricsRegistry()
        registry.counter("idle_total").inc(7)
        registry.histogram("idle_seconds").observe(0.1)
        before = registry.snapshot()
        delta = snapshot_delta(before, registry.snapshot())
        assert delta["counters"] == []
        assert delta["histograms"] == []

    def test_histogram_delta_subtracts_buckets_count_and_sum(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("op_seconds", op_kind="select")
        histogram.observe(0.001)
        before = registry.snapshot()
        histogram.observe(0.002)
        histogram.observe(0.004)
        delta = snapshot_delta(before, registry.snapshot())
        entry = delta["histograms"][0]
        assert entry["count"] == 2
        assert entry["sum"] == pytest.approx(0.006)
        assert sum(entry["buckets"]) == 2
        summaries = histogram_summaries(delta)
        assert summaries[0]["count"] == 2

    def test_instruments_born_inside_the_window_pass_through(self):
        registry = MetricsRegistry()
        before = registry.snapshot()
        registry.counter("fresh_total").inc(2)
        registry.histogram("fresh_seconds").observe(0.01)
        delta = snapshot_delta(before, registry.snapshot())
        assert delta["counters"][0]["value"] == 2
        assert delta["histograms"][0]["count"] == 1

    def test_gauges_keep_their_point_in_time_reading(self):
        registry = MetricsRegistry()
        registry.gauge("active").set(9)
        before = registry.snapshot()
        registry.gauge("active").set(4)
        delta = snapshot_delta(before, registry.snapshot())
        assert delta["gauges"] == [{"name": "active", "labels": {}, "value": 4}]

    def test_dead_registry_shrinkage_clamps_at_zero(self):
        # A registry that dies between the snapshots makes the merged
        # "after" smaller than "before"; the delta must not go negative.
        survivor = MetricsRegistry()
        survivor.counter("ops_total").inc(1)
        doomed = MetricsRegistry()
        doomed.counter("ops_total").inc(100)
        doomed.histogram("op_seconds").observe(0.5)
        before = merge_snapshots(survivor.snapshot(), doomed.snapshot())
        survivor.counter("ops_total").inc(2)
        delta = snapshot_delta(before, survivor.snapshot())
        entries = [c for c in delta["counters"] if c["name"] == "ops_total"]
        assert entries == []  # 3 - 101 clamps to zero and is dropped
        assert delta["histograms"] == []

    def test_delta_scopes_one_benchmark_among_many(self):
        # The conftest bleed scenario: benchmark 1's histograms must not
        # appear in benchmark 2's delta.
        registry = MetricsRegistry()
        registry.histogram("op_seconds", op_kind="select").observe(0.1)
        baseline = aggregate_snapshot()
        registry.histogram("op_seconds", op_kind="insert").observe(0.2)
        delta = snapshot_delta(baseline, aggregate_snapshot())
        kinds = {
            entry["labels"].get("op_kind")
            for entry in delta["histograms"]
            if entry["name"] == "op_seconds"
        }
        assert "insert" in kinds
        assert "select" not in kinds
