"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, build_scheme, main
from repro.schemes.registry import available_schemes
from repro.workloads import employee_schema


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_demo_defaults(self):
        args = build_parser().parse_args(["demo"])
        assert args.scheme == "swp"
        assert args.size == 500

    def test_attack_choices(self):
        args = build_parser().parse_args(["attack", "john", "--size", "300"])
        assert args.attack == "john"
        assert args.size == 300
        with pytest.raises(SystemExit):
            build_parser().parse_args(["attack", "unknown-attack"])


class TestBuildScheme:
    def test_every_choice_is_constructible(self):
        schema = employee_schema()
        names = {build_scheme(name, schema).name for name in available_schemes()}
        assert len(names) == len(available_schemes())

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            build_scheme("nope", employee_schema())


class TestCommands:
    def test_demo_runs(self, capsys):
        exit_code = main(["demo", "--scheme", "index", "--size", "60", "--seed", "1"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "Outsourced 60 tuples" in captured.out
        assert "false positive" in captured.out

    def test_attack_salary_pair(self, capsys):
        exit_code = main(["attack", "salary-pair", "--trials", "20", "--scheme", "deterministic"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "salary-pair attack vs deterministic" in captured.out
        assert "success 1.00" in captured.out

    def test_attack_john(self, capsys):
        exit_code = main(["attack", "john", "--size", "200", "--seed", "3"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "target 'John'" in captured.out

    def test_attack_hospital(self, capsys):
        exit_code = main(["attack", "hospital", "--size", "300", "--seed", "4"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "query identification correct: True" in captured.out

    def test_experiments_unknown_id(self, capsys):
        exit_code = main(["experiments", "--only", "E99"])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "unknown experiment" in captured.err

    def test_experiments_single_quick_run(self, capsys):
        exit_code = main(["experiments", "--only", "E9"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "E9" in captured.out
        assert "expansion" in captured.out
