"""Tests for the command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, build_scheme, main
from repro.schemes.registry import available_schemes
from repro.workloads import employee_schema


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_demo_defaults(self):
        args = build_parser().parse_args(["demo"])
        assert args.scheme == "swp"
        assert args.size == 500

    def test_attack_choices(self):
        args = build_parser().parse_args(["attack", "john", "--size", "300"])
        assert args.attack == "john"
        assert args.size == 300
        with pytest.raises(SystemExit):
            build_parser().parse_args(["attack", "unknown-attack"])

    def test_cluster_requires_a_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["cluster"])

    def test_cluster_spawn_defaults(self):
        args = build_parser().parse_args(["cluster", "spawn"])
        assert args.shards == 2
        assert args.host == "127.0.0.1"

    def test_serve_stats_interval_flag(self):
        args = build_parser().parse_args(["serve", "--stats-interval", "2.5"])
        assert args.stats_interval == 2.5

    def test_serve_dispatch_workers_flag(self):
        args = build_parser().parse_args(["serve", "--dispatch-workers", "8"])
        assert args.dispatch_workers == 8
        assert build_parser().parse_args(["serve"]).dispatch_workers == 4

    def test_cluster_manifest_flags(self):
        spawn = build_parser().parse_args(
            ["cluster", "spawn", "--manifest", "fleet.json"]
        )
        assert spawn.manifest == "fleet.json"
        status = build_parser().parse_args(
            ["cluster", "status", "--manifest", "fleet.json"]
        )
        assert status.manifest == "fleet.json"
        assert status.url is None


class TestBuildScheme:
    def test_every_choice_is_constructible(self):
        schema = employee_schema()
        names = {build_scheme(name, schema).name for name in available_schemes()}
        assert len(names) == len(available_schemes())

    def test_unknown_scheme_rejected(self):
        with pytest.raises(ValueError):
            build_scheme("nope", employee_schema())


class TestCommands:
    def test_demo_runs(self, capsys):
        exit_code = main(["demo", "--scheme", "index", "--size", "60", "--seed", "1"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "Outsourced 60 tuples" in captured.out
        assert "false positive" in captured.out

    def test_attack_salary_pair(self, capsys):
        exit_code = main(["attack", "salary-pair", "--trials", "20", "--scheme", "deterministic"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "salary-pair attack vs deterministic" in captured.out
        assert "success 1.00" in captured.out

    def test_attack_john(self, capsys):
        exit_code = main(["attack", "john", "--size", "200", "--seed", "3"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "target 'John'" in captured.out

    def test_attack_hospital(self, capsys):
        exit_code = main(["attack", "hospital", "--size", "300", "--seed", "4"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "query identification correct: True" in captured.out

    def test_experiments_unknown_id(self, capsys):
        exit_code = main(["experiments", "--only", "E99"])
        captured = capsys.readouterr()
        assert exit_code == 2
        assert "unknown experiment" in captured.err

    def test_experiments_single_quick_run(self, capsys):
        exit_code = main(["experiments", "--only", "E9"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "E9" in captured.out
        assert "expansion" in captured.out


class TestClusterCommands:
    def test_route_distribution_is_offline_and_balanced(self, capsys):
        exit_code = main([
            "cluster", "route",
            "cluster://10.0.0.1:7707,10.0.0.2:7707,10.0.0.3:7707",
            "--keys", "3000",
        ])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "ring of 3 shard(s)" in captured.out
        assert "max deviation" in captured.out

    def test_route_single_key(self, capsys):
        exit_code = main([
            "cluster", "route", "cluster://a:1,b:2", "--key", "deadbeef",
        ])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "deadbeef -> tcp://" in captured.out

    def test_route_rejects_garbage(self, capsys):
        assert main(["cluster", "route", "cluster://"]) == 2
        assert main(["cluster", "route", "cluster://h:1", "--key", "zz"]) == 2
        assert main(["cluster", "route", "cluster://h:1", "--keys", "0"]) == 2
        assert main(["cluster", "route", "cluster://h:1", "--replicas", "0"]) == 2
        assert main(["cluster", "route", "cluster://h:1", "--replicas", "2"]) == 2
        assert main(["cluster", "route", "cluster://h:1", "--virtual-nodes", "0"]) == 2
        assert main(["cluster", "route", "cluster://h:1?quorum=2"]) == 2

    def test_route_reports_replica_placement(self, capsys):
        exit_code = main([
            "cluster", "route", "cluster://a:1,b:2,c:3?replicas=2",
            "--keys", "500",
        ])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "replication factor 2" in captured.out
        assert "1000 copies" in captured.out
        assert "up to 1 shard(s) down" in captured.out

    def test_route_single_key_lists_the_replica_set(self, capsys):
        exit_code = main([
            "cluster", "route", "cluster://a:1,b:2,c:3", "--key", "deadbeef",
            "--replicas", "2",
        ])
        captured = capsys.readouterr()
        assert exit_code == 0
        line = [l for l in captured.out.splitlines() if l.startswith("deadbeef")][0]
        shards = line.split(" -> ")[1].split(", ")
        assert len(shards) == len(set(shards)) == 2

    def test_spawn_rejects_a_zero_fleet(self, capsys):
        assert main(["cluster", "spawn", "--shards", "0"]) == 2

    def test_spawn_rejects_impossible_replication(self, capsys):
        assert main(["cluster", "spawn", "--shards", "2", "--replicas", "0"]) == 2
        assert main(["cluster", "spawn", "--shards", "2", "--replicas", "3"]) == 2

    def test_status_reports_live_shards(self, capsys):
        from repro.api import EncryptedDatabase
        from repro.net import ThreadedTcpServer

        with ThreadedTcpServer() as one, ThreadedTcpServer() as two:
            url = f"cluster://127.0.0.1:{one.port},127.0.0.1:{two.port}"
            with EncryptedDatabase.connect(url) as db:
                db.create_table(
                    "T(name:string[8], v:int[4])",
                    rows=[(f"n{i}", i) for i in range(20)],
                )
                exit_code = main(["cluster", "status", url])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "2/2 shard(s) up" in captured.out
        assert "T=" in captured.out

    def test_status_flags_a_down_shard(self, capsys):
        from repro.net import ThreadedTcpServer

        with ThreadedTcpServer() as one:
            exit_code = main([
                "cluster", "status",
                f"cluster://127.0.0.1:{one.port},127.0.0.1:1",
                "--timeout", "2",
            ])
        captured = capsys.readouterr()
        assert exit_code == 1
        assert "DOWN" in captured.out
        assert "1/2 shard(s) up" in captured.out

    def test_status_rejects_an_impossible_replication_factor(self, capsys):
        assert main(["cluster", "status", "cluster://h:1,i:2?replicas=5"]) == 2
        assert "impossible" in capsys.readouterr().err

    def test_status_explains_replicated_outage_tolerance(self, capsys):
        from repro.net import ThreadedTcpServer

        with ThreadedTcpServer() as one, ThreadedTcpServer() as two:
            exit_code = main([
                "cluster", "status",
                f"cluster://127.0.0.1:{one.port},127.0.0.1:{two.port},"
                f"127.0.0.1:1?replicas=2",
                "--timeout", "2",
            ])
        captured = capsys.readouterr()
        assert exit_code == 1  # a shard is still down, even if reads survive
        assert "replication factor 2: reads stay complete" in captured.out

    def test_status_from_a_manifest_file(self, capsys, tmp_path):
        from repro.cluster import ClusterManifest, ShardEntry
        from repro.net import ThreadedTcpServer

        with ThreadedTcpServer() as one, ThreadedTcpServer() as two:
            path = ClusterManifest(
                shards=(
                    ShardEntry("shard-0", f"tcp://127.0.0.1:{one.port}"),
                    ShardEntry("shard-1", f"tcp://127.0.0.1:{two.port}"),
                ),
            ).save(tmp_path / "fleet.json")
            exit_code = main(["cluster", "status", "--manifest", str(path)])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "2/2 shard(s) up" in captured.out
        assert "shard-0" in captured.out

    def test_status_needs_exactly_one_topology_source(self, capsys, tmp_path):
        assert main(["cluster", "status"]) == 2
        assert "exactly one" in capsys.readouterr().err
        assert main([
            "cluster", "status", "cluster://h:1", "--manifest", str(tmp_path / "f.json")
        ]) == 2

    def test_status_rejects_a_broken_manifest(self, capsys, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        assert main(["cluster", "status", "--manifest", str(bad)]) == 2
        assert "JSON" in capsys.readouterr().err

    def test_serve_rejects_zero_dispatch_workers(self, capsys):
        assert main(["serve", "--dispatch-workers", "0"]) == 2
        assert "dispatch-workers" in capsys.readouterr().err
