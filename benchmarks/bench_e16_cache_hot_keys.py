"""E16: the hot-key read cache tier under skewed (zipfian) traffic.

New-workload claim (no paper counterpart): skewed read traffic -- the
million-user shape, where a handful of hot keys carry most of the load --
re-sends byte-identical encrypted query tokens over and over, and the
deterministic token encoding makes those repeats cacheable without ever
touching plaintext.  Two deployments against real ``repro serve``
subprocesses over the async transport:

* **single node, client cache** -- each session keeps a private
  ``(relation, token)`` result cache; repeats skip the provider entirely.
* **3-shard fleet, coordinator cache** -- every session rides ONE
  cache-enabled :class:`ShardRouter`, so a key made hot by any session is
  a hit for all of them and one fill absorbs the whole fleet's scatter.

Each cell drives the same seeded zipfian point-select burst (exponent
``ZIPF_EXPONENT`` > 1.1, the hot-key regime) through 1, 8 and 64
concurrent sessions, cache off vs on.  A warm-up burst runs first in
every cell -- cache-off pays it too -- so the measured round compares
steady states, not cold-start fills.

The correctness bar: cache-on answers are identical to cache-off for
every query in every cell; every cache-on cell reports a non-zero hit
ratio; and the coordinator cache at 8 concurrent sessions on the 3-shard
fleet sustains >= 3x the cache-off read op/s.
"""

from __future__ import annotations

import threading
import time

from conftest import run_once

from repro.analysis.reporting import ExperimentTable
from repro.api import EncryptedDatabase
from repro.bench.runner import ProviderFleet
from repro.cluster import ShardRouter
from repro.crypto.keys import SecretKey
from repro.crypto.rng import DeterministicRng
from repro.relational import Selection
from repro.workloads.distributions import ZipfDistribution

SEED = 16
SCHEME = "swp"
TABLE_SIZE = 64
QUERIES = 192
ZIPF_EXPONENT = 1.3
SESSION_COUNTS = (1, 8, 64)
FLEET_SHARDS = 3
HEADLINE_SESSIONS = 8
HEADLINE_SPEEDUP = 3.0

EMP_DECL = "Emp(name:string[14], dept:string[5], salary:int[6])"
ROWS = [(f"emp{i}", "HR" if i % 2 else "IT", 1000 + i) for i in range(TABLE_SIZE)]


def _hot_statements() -> list:
    """The seeded zipfian point-select burst every cell replays."""
    distribution = ZipfDistribution(range(TABLE_SIZE), exponent=ZIPF_EXPONENT)
    indices = distribution.sample_many(DeterministicRng(SEED), QUERIES)
    return [Selection.equals("name", f"emp{index}") for index in indices]


def _burst(sessions: list, statements: list) -> tuple[float, list]:
    """Drive the burst round-robin across concurrent session threads.

    Returns (wall seconds, per-statement sorted plaintext rows) so callers
    can both rate the cell and diff cache-on against cache-off.
    """
    results: list = [None] * len(statements)
    start_line = threading.Barrier(len(sessions) + 1)

    def worker(session, offset: int) -> None:
        start_line.wait()
        for i in range(offset, len(statements), len(sessions)):
            outcome = session.select(statements[i], table="Emp")
            results[i] = sorted(tuple(t.values()) for t in outcome.relation)

    threads = [
        threading.Thread(target=worker, args=(session, offset))
        for offset, session in enumerate(sessions)
    ]
    for thread in threads:
        thread.start()
    start_line.wait()
    begin = time.perf_counter()
    for thread in threads:
        thread.join(timeout=300)
    elapsed = time.perf_counter() - begin
    assert all(row is not None for row in results), "a session thread died"
    return elapsed, results


def _seed_relation(url: str, secret_key) -> None:
    db = EncryptedDatabase.connect(
        url, secret_key, scheme=SCHEME, rng=DeterministicRng(SEED)
    )
    try:
        db.create_table(EMP_DECL, rows=ROWS)
    finally:
        db.close()


def _open_sessions(tier: str, url: str, count: int, cache: bool, secret_key):
    """Open ``count`` sessions for a cell; returns (sessions, close, stats).

    ``coordinator`` opens ONE shared cache-enabled router and hangs every
    session off it -- the deployment shape the coordinator tier exists
    for.  ``client`` gives each session its own connection and (when on)
    its own private cache.
    """
    if tier == "coordinator":
        router = ShardRouter.connect(url, cache=True if cache else None)
        sessions = [
            EncryptedDatabase.open(
                secret_key,
                server=router,
                scheme=SCHEME,
                rng=DeterministicRng(SEED + i),
            )
            for i in range(count)
        ]

        def stats() -> dict:
            return router.cache.stats() if router.cache is not None else {}

        def close() -> None:
            for session in sessions:
                session.close()
            router.close()

    else:
        sessions = [
            EncryptedDatabase.connect(
                url,
                secret_key,
                scheme=SCHEME,
                rng=DeterministicRng(SEED + i),
                cache=True if cache else None,
            )
            for i in range(count)
        ]

        def stats() -> dict:
            if sessions[0].cache is None:
                return {}
            hits = sum(s.cache.stats()["hits"] for s in sessions)
            misses = sum(s.cache.stats()["misses"] for s in sessions)
            total = hits + misses
            return {
                "hits": hits,
                "misses": misses,
                "hit_ratio": hits / total if total else 0.0,
            }

        def close() -> None:
            for session in sessions:
                session.close()

    for session in sessions:
        session.attach_table(EMP_DECL)
    return sessions, close, stats


def run_e16_cache_hot_keys():
    secret_key = SecretKey.generate(rng=DeterministicRng(SEED))
    statements = _hot_statements()
    table = ExperimentTable(
        title=(
            f"E16: hot-key read cache ({QUERIES} zipfian point selects, "
            f"exponent {ZIPF_EXPONENT}, table {TABLE_SIZE}, async transport, "
            f"steady state after one warm-up burst)"
        ),
        columns=["topology", "sessions", "cache", "elapsed ms", "ops/s",
                 "hit ratio", "speedup"],
    )
    metrics: dict[str, float] = {}
    with ProviderFleet.spawn(1) as single, ProviderFleet.spawn(FLEET_SHARDS) as fleet:
        topologies = (
            ("single node", "single", "client",
             f"tcp://{single.addresses[0]}?async=1"),
            (f"{FLEET_SHARDS}-shard fleet", "fleet", "coordinator",
             "cluster://" + ",".join(fleet.addresses) + "?async=1"),
        )
        for label, key, tier, url in topologies:
            _seed_relation(url, secret_key)
            for count in SESSION_COUNTS:
                observed: dict[bool, list] = {}
                ops: dict[bool, float] = {}
                for cache in (False, True):
                    sessions, close, stats = _open_sessions(
                        tier, url, count, cache, secret_key
                    )
                    try:
                        _burst(sessions, statements)  # warm-up (both modes)
                        elapsed, observed[cache] = _burst(sessions, statements)
                        hit_ratio = stats().get("hit_ratio", 0.0)
                    finally:
                        close()
                    ops[cache] = QUERIES / elapsed
                    mode = "on" if cache else "off"
                    speedup = ops[True] / ops[False] if cache else 1.0
                    table.add_row(
                        f"{label} ({tier} cache)", count, mode,
                        elapsed * 1000.0, ops[cache], hit_ratio, speedup,
                    )
                    metrics[f"{key}_{count}s_{mode}_ops_per_s"] = round(
                        ops[cache], 1
                    )
                    if cache:
                        metrics[f"{key}_{count}s_hit_ratio"] = round(hit_ratio, 3)
                        metrics[f"{key}_{count}s_speedup"] = round(speedup, 2)
                        # Stale answers are worse than slow ones: the cached
                        # run must be indistinguishable from the uncached one.
                        assert observed[True] == observed[False], (
                            f"cache-on diverged from cache-off: {label}, "
                            f"{count} sessions"
                        )
                        assert hit_ratio > 0.0, (label, count)
    return table, metrics


def test_e16_cache_hot_keys(benchmark, record_table):
    table, metrics = run_once(benchmark, run_e16_cache_hot_keys)
    record_table(
        "e16_cache_hot_keys",
        table,
        metrics=metrics,
        params={
            "table_size": TABLE_SIZE,
            "queries": QUERIES,
            "zipf_exponent": ZIPF_EXPONENT,
            "session_counts": list(SESSION_COUNTS),
            "fleet_shards": FLEET_SHARDS,
            "scheme": SCHEME,
            "seed": SEED,
            "benchmark_host_cores": 1,
        },
    )
    # The acceptance bar: the shared coordinator cache turns a skewed read
    # burst from N scatter round trips into ~N in-memory hits, and at 8
    # concurrent sessions on the 3-shard fleet that is worth >= 3x op/s.
    headline = metrics[f"fleet_{HEADLINE_SESSIONS}s_speedup"]
    assert headline >= HEADLINE_SPEEDUP, metrics
    # The client tier must also pay for itself on repeats.
    assert metrics[f"single_{HEADLINE_SESSIONS}s_speedup"] > 1.0, metrics
