"""E14: read completeness and latency under replication and provider loss.

New-workload claim (no paper counterpart): with per-shard replication
(``?replicas=2``) the sharded deployment keeps answering *exact* query
results -- the paper's core guarantee -- while a provider is dead.  Every
tuple is stored on its 2 ring-successor shards, so when 1 of 3 providers
is SIGKILLed mid-workload the surviving replicas still cover the whole
relation: the router fails over, deduplicates by public tuple id, and the
read completes un-degraded (the DEGRADED policy never fires; the session
runs the default fail-fast policy throughout).

Three measured configurations, all real ``repro serve`` subprocesses
driven through ``cluster://``:

* ``r1-baseline`` -- 3 shards, no replication: the pre-replication read
  cost, for the replication overhead figure.
* ``r2-healthy``  -- 3 shards, ``replicas=2``, all providers up: each
  provider scans ~2/3 of the relation instead of ~1/3, the price paid
  for surviving a failure.
* ``r2-failover`` -- the same fleet after SIGKILLing one provider: the
  *before/after* read latency around the kill is the headline number,
  recorded to ``benchmarks/results/e14_replicated_reads.json``.

The correctness bar: every configuration answers every query with exactly
one true match (duplicate-free despite 2 physical copies per tuple), the
post-kill reads are complete with ``degraded_reads == 0`` and
``failover_reads > 0``, and the logical tuple count never inflates.
"""

from __future__ import annotations

import os
import pathlib
import re
import signal
import statistics
import subprocess
import sys
import time

from conftest import run_once

from repro.analysis.reporting import ExperimentTable
from repro.api import EncryptedDatabase
from repro.crypto.keys import SecretKey
from repro.crypto.rng import DeterministicRng

TABLE_SIZE = 600
NUM_QUERIES = 24
NUM_SHARDS = 3
SCHEME = "swp"
SEED = 14

EMP_DECL = "Emp(name:string[14], dept:string[5], salary:int[6])"
STARTUP_TIMEOUT_S = 30

_SRC = str(pathlib.Path(__file__).resolve().parent.parent / "src")


def _rows() -> list[tuple]:
    return [(f"emp{i}", f"D{i % 7}", 1000 + i) for i in range(TABLE_SIZE)]


def _statements() -> list[str]:
    step = TABLE_SIZE // NUM_QUERIES
    return [
        f"SELECT * FROM Emp WHERE name = 'emp{i * step}'" for i in range(NUM_QUERIES)
    ]


def _spawn_providers(count: int) -> tuple[list[subprocess.Popen], list[str]]:
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    procs, hosts = [], []
    for _ in range(count):
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", "--port", "0"],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        procs.append(proc)
    try:
        for proc in procs:
            banner = proc.stdout.readline()
            match = re.search(r"tcp://([\d.]+):(\d+)", banner)
            if not match:
                raise RuntimeError(f"provider did not start: {banner!r}")
            hosts.append(f"{match.group(1)}:{match.group(2)}")
    except BaseException:
        _stop_providers(procs)
        raise
    return procs, hosts


def _stop_providers(procs: list[subprocess.Popen]) -> None:
    for proc in procs:
        if proc.poll() is None:
            proc.send_signal(signal.SIGTERM)
    for proc in procs:
        if proc.poll() is None:
            try:
                proc.communicate(timeout=15)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.communicate(timeout=10)


def _timed_selects(db, statements) -> tuple[list[float], list[int]]:
    """Per-query wall clock (ms) and result sizes."""
    latencies, sizes = [], []
    for statement in statements:
        start = time.perf_counter()
        outcome = db.select(statement)
        latencies.append((time.perf_counter() - start) * 1000.0)
        sizes.append(len(outcome.relation))
    return latencies, sizes


def _phase_metrics(label: str, latencies: list[float], sizes: list[int]) -> dict:
    return {
        "phase": label,
        "mean_ms": statistics.fmean(latencies),
        "p95_ms": sorted(latencies)[int(0.95 * (len(latencies) - 1))],
        "hits": sizes,
    }


def run_e14_replicated_reads():
    """Measure read latency before and after killing 1 of 3 providers."""
    secret_key = SecretKey.generate(rng=DeterministicRng(SEED))
    statements = _statements()
    rows = _rows()
    phases = []

    # --- r1 baseline: the unreplicated fleet's read latency -------------- #
    procs, hosts = _spawn_providers(NUM_SHARDS)
    try:
        url = "cluster://" + ",".join(hosts)
        with EncryptedDatabase.connect(
            url, secret_key, scheme=SCHEME, rng=DeterministicRng(SEED)
        ) as db:
            db.create_table(EMP_DECL, rows=rows)
            latencies, sizes = _timed_selects(db, statements)
            phases.append(_phase_metrics("r1-baseline", latencies, sizes))
            db.drop_table("Emp")
    finally:
        _stop_providers(procs)

    # --- r2: the replicated fleet, healthy then with one provider dead --- #
    procs, hosts = _spawn_providers(NUM_SHARDS)
    try:
        url = "cluster://" + ",".join(hosts) + "?replicas=2"
        with EncryptedDatabase.connect(
            url, secret_key, scheme=SCHEME, rng=DeterministicRng(SEED)
        ) as db:
            db.create_table(EMP_DECL, rows=rows)
            physical = sum(db.server.per_shard_tuple_counts("Emp").values())
            assert physical == 2 * TABLE_SIZE, physical

            latencies, sizes = _timed_selects(db, statements)
            phases.append(_phase_metrics("r2-healthy", latencies, sizes))

            procs[0].send_signal(signal.SIGKILL)  # mid-workload provider loss
            procs[0].wait(timeout=15)

            latencies, sizes = _timed_selects(db, statements)
            phases.append(_phase_metrics("r2-failover", latencies, sizes))
            stats = db.server.stats.as_dict()
            logical = db.count("Emp")
    finally:
        _stop_providers(procs)

    table = ExperimentTable(
        title=(
            f"E14: {NUM_QUERIES} exact selects over {TABLE_SIZE} tuples "
            f"({SCHEME}), {NUM_SHARDS} provider subprocesses, replicas=2, "
            "1 provider SIGKILLed mid-workload"
        ),
        columns=["phase", "mean ms", "p95 ms", "hits", "complete"],
    )
    for phase in phases:
        table.add_row(
            phase["phase"],
            phase["mean_ms"],
            phase["p95_ms"],
            sum(phase["hits"]),
            all(size == 1 for size in phase["hits"]),
        )
    return table, phases, stats, logical


def test_e14_replicated_reads(benchmark, record_table):
    table, phases, stats, logical = run_once(benchmark, run_e14_replicated_reads)
    by_phase = {phase["phase"]: phase for phase in phases}
    record_table(
        "e14_replicated_reads",
        table,
        metrics={
            "read_latency_ms": {
                phase["phase"]: {
                    "mean": round(phase["mean_ms"], 3),
                    "p95": round(phase["p95_ms"], 3),
                }
                for phase in phases
            },
            "before_kill_mean_ms": round(by_phase["r2-healthy"]["mean_ms"], 3),
            "after_kill_mean_ms": round(by_phase["r2-failover"]["mean_ms"], 3),
            "replication_read_overhead_x": round(
                by_phase["r2-healthy"]["mean_ms"] / by_phase["r1-baseline"]["mean_ms"],
                3,
            ),
            "failover_reads": stats["failover_reads"],
            "degraded_reads": stats["degraded_reads"],
        },
        params={
            "table_size": TABLE_SIZE,
            "num_queries": NUM_QUERIES,
            "num_shards": NUM_SHARDS,
            "replicas": 2,
            "scheme": SCHEME,
            "seed": SEED,
        },
    )

    # Every phase answered every query with exactly its one true match --
    # duplicate-free despite 2 physical copies per tuple, and complete
    # despite a dead provider in the failover phase.
    for phase in phases:
        assert phase["hits"] == [1] * NUM_QUERIES, phase["phase"]

    # The failover really happened and never degraded a read.
    assert stats["failover_reads"] >= NUM_QUERIES
    assert stats["degraded_reads"] == 0
    assert logical == TABLE_SIZE  # replicas/duplicates never inflate the count
