"""E5: the passive hospital inference attack (Section 2).

Paper claim: knowing only the schema, the number of hospitals and rough priors
(flows 0.2/0.3/0.5, outcomes 0.08/0.92), Eve identifies Alex's four queries
from their result sizes and, by intersecting the answer sets, recovers the
fatality ratio of each hospital -- against any database PH.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import run_e5_hospital_inference


def test_e5_hospital_inference(benchmark, record_table):
    result = run_once(
        benchmark,
        run_e5_hospital_inference,
        sizes=(500, 2000, 8000),
        trials=3,
    )
    record_table("e5_hospital_inference", result.to_table())

    assert result.rows
    for row in result.rows:
        # Eve reliably identifies which encrypted query is which ...
        assert row.identification_rate >= 2 / 3
        # ... and recovers the per-hospital fatality ratios almost exactly
        # (the construction introduces no false positives at default settings).
        assert row.mean_absolute_error <= 0.02
        assert row.max_absolute_error <= 0.05
    # Larger databases make the size-based identification easier, never harder.
    largest = [r for r in result.rows if r.database_size == 8000]
    assert all(r.identification_rate == 1.0 for r in largest)
