"""E1: the Section-1 salary-pair attack against the Hacigumus bucketization scheme.

Paper claim: "Eve can determine with high probability to which table
corresponds the received ciphertext" -- i.e. the adversary wins the
Definition 1.2 game with probability close to 1, while the paper's own
construction reduces her to guessing.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import run_e1_bucketization_attack


def test_e1_bucketization_attack(benchmark, record_table):
    result = run_once(
        benchmark,
        run_e1_bucketization_attack,
        trials=120,
        bucket_counts=(4, 16, 64, 256),
    )
    record_table("e1_bucketization_attack", result.to_table())

    bucket_rows = [r for r in result.rows if r.scheme == "bucketization"]
    swp_rows = [r for r in result.rows if r.scheme == "dph-swp"]

    # Shape: the attack breaks bucketization for every reasonable bucket count ...
    assert all(r.success_rate >= 0.9 for r in bucket_rows)
    # ... and the construction resists it (advantage statistically ~0).
    assert all(abs(r.advantage) <= 0.25 for r in swp_rows)
