"""E2: the salary-pair attack against the Damiani hashed-index scheme.

Paper claim: "Similar attacks work on the scheme of Damiani et al." -- the
deterministic index values leak the equality pattern, so the adversary wins
whenever the two distinct salaries do not collide in the hash index
(probability 1 - 1/num_hash_values).
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import run_e2_damiani_attack


def test_e2_damiani_attack(benchmark, record_table):
    result = run_once(
        benchmark,
        run_e2_damiani_attack,
        trials=120,
        hash_value_counts=(2, 16, 64, 256),
    )
    record_table("e2_damiani_attack", result.to_table())

    by_parameter = {r.parameter: r for r in result.rows if r.scheme == "damiani-hash"}
    # With many hash values the attack is near-perfect ...
    assert by_parameter["hash-values=256"].success_rate >= 0.95
    assert by_parameter["hash-values=64"].success_rate >= 0.9
    # ... and even the coarsest index (2 values) leaves a large advantage
    # (collision probability 1/2 still lets Eve win 3 trials out of 4).
    assert by_parameter["hash-values=2"].success_rate >= 0.6
    # Deterministic encryption (no collisions at all) is broken outright.
    deterministic = [r for r in result.rows if r.scheme == "deterministic"]
    assert deterministic and deterministic[0].success_rate >= 0.95
