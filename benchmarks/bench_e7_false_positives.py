"""E7: false-positive rate of the SWP searchable scheme vs the check length m.

Paper claim (Section 3): "some searchable encryption schemes, and in
particular the scheme presented in [7], sometimes return false positives.
Alex needs to run a filter on the output.  As the error rate is relatively
small for all practical purposes, this does not affect the efficiency of our
construction."  The observed rate should track the predicted 2^-8m.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import run_e7_false_positives


def test_e7_false_positives(benchmark, record_table):
    result = run_once(
        benchmark,
        run_e7_false_positives,
        check_lengths=(1, 2, 3),
        words_per_setting=30000,
    )
    record_table("e7_false_positives", result.to_table())

    by_m = {row.check_length_bytes: row for row in result.rows}

    # m = 1 byte: predicted 1/256 ~ 0.0039; observed should be the same order.
    assert 0.0005 <= by_m[1].observed_rate <= 0.02
    # m = 2 bytes: predicted 1/65536; with 30k words we expect ~0-3 hits.
    assert by_m[2].false_positives <= 5
    # m = 3 bytes: essentially impossible at this sample size.
    assert by_m[3].false_positives == 0
    # The rate is monotonically non-increasing in m.
    assert by_m[1].observed_rate >= by_m[2].observed_rate >= by_m[3].observed_rate
