"""E12: end-to-end serving throughput of the TCP provider.

New-workload claim (no paper counterpart): with :mod:`repro.net` the
provider is a real server process, so we can measure what the wire costs
and what concurrency buys:

* **in-process vs socket** -- the same sequential exact selects through
  ``handle_message`` directly and through a loopback TCP connection; the
  difference is pure transport overhead (framing, syscalls, scheduling).
* **sequential vs batched** -- N ``QUERY`` round trips vs one
  ``BATCH_QUERY`` frame over the same socket; batching amortizes the
  per-round-trip latency that only exists now that there *is* a network.
* **concurrent clients** -- the same total query load issued by 4 client
  threads, each with its own connection, against one provider process.

The correctness bar: every path answers every query with exactly the same
result sizes, and the provider must actually have served >= 4 concurrent
client connections.
"""

from __future__ import annotations

import threading
import time

from conftest import run_once

from repro.analysis.reporting import ExperimentTable
from repro.api import EncryptedDatabase
from repro.crypto.keys import SecretKey
from repro.crypto.rng import DeterministicRng
from repro.net import ThreadedTcpServer
from repro.workloads import EmployeeWorkload

TABLE_SIZE = 200
NUM_QUERIES = 24
NUM_CLIENTS = 4
SCHEME = "swp"
SEED = 12

EXPECTED_HITS = [1] * NUM_QUERIES  # every query targets exactly one employee


def _statements(workload) -> list[str]:
    step = TABLE_SIZE // NUM_QUERIES
    return [
        f"SELECT * FROM Emp WHERE name = 'emp{i * step}'" for i in range(NUM_QUERIES)
    ]


def _new_session(url_or_none, secret_key, rng):
    if url_or_none is None:
        return EncryptedDatabase.open(secret_key, scheme=SCHEME, rng=rng)
    return EncryptedDatabase.connect(url_or_none, secret_key, scheme=SCHEME, rng=rng)


def _sequential(db, statements) -> tuple[float, list[int]]:
    start = time.perf_counter()
    sizes = [len(db.select(s).relation) for s in statements]
    return time.perf_counter() - start, sizes


def _batched(db, statements) -> tuple[float, list[int]]:
    start = time.perf_counter()
    outcomes = db.select_many(statements, table="Emp")
    return time.perf_counter() - start, [len(o.relation) for o in outcomes]


def _concurrent(url, secret_key, schema, statements) -> tuple[float, list[int]]:
    """NUM_CLIENTS sessions, each issuing its slice of the statements."""
    slices = [statements[i::NUM_CLIENTS] for i in range(NUM_CLIENTS)]
    results: list[list[int] | None] = [None] * NUM_CLIENTS
    errors: list[Exception] = []

    def worker(index: int) -> None:
        try:
            session = EncryptedDatabase.connect(url, secret_key, scheme=SCHEME)
            session.attach_table(schema)
            results[index] = [len(session.select(s).relation) for s in slices[index]]
            session.close()
        except Exception as exc:  # noqa: BLE001 - surfaced via the errors list
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(NUM_CLIENTS)]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=120)
    elapsed = time.perf_counter() - start
    assert not errors, errors
    # re-interleave the per-client slices back into statement order
    sizes = [0] * NUM_QUERIES
    for client, slice_sizes in enumerate(results):
        assert slice_sizes is not None
        for offset, size in enumerate(slice_sizes):
            sizes[client + offset * NUM_CLIENTS] = size
    return elapsed, sizes


def run_e12_network_throughput():
    """Time all four serving paths over one provider."""
    workload = EmployeeWorkload.generate(TABLE_SIZE, seed=SEED)
    secret_key = SecretKey.generate(rng=DeterministicRng(SEED))
    statements = _statements(workload)
    rows = []

    # Path 1: the in-process baseline (frames, but no socket).
    db = _new_session(None, secret_key, DeterministicRng(SEED))
    db.create_table(workload.schema, rows=[tuple(t.as_dict().values()) for t in workload.relation])
    in_process_s, sizes = _sequential(db, statements)
    rows.append(("in-process sequential", NUM_QUERIES, in_process_s, sizes))

    with ThreadedTcpServer() as server:
        url = f"tcp://127.0.0.1:{server.port}"
        remote = _new_session(url, secret_key, DeterministicRng(SEED))
        remote.create_table(
            workload.schema, rows=[tuple(t.as_dict().values()) for t in workload.relation]
        )

        # Path 2: the same sequential selects, now over loopback TCP.
        tcp_sequential_s, sizes = _sequential(remote, statements)
        rows.append(("tcp sequential", NUM_QUERIES, tcp_sequential_s, sizes))

        # Path 3: one BATCH_QUERY frame instead of N round trips.
        tcp_batched_s, sizes = _batched(remote, statements)
        rows.append(("tcp batched", 1, tcp_batched_s, sizes))

        # Path 4: the load split across concurrent client connections.
        tcp_concurrent_s, sizes = _concurrent(url, secret_key, workload.schema, statements)
        rows.append(
            (f"tcp {NUM_CLIENTS} concurrent clients", NUM_QUERIES, tcp_concurrent_s, sizes)
        )
        remote.close()
        connections_served = server.server.stats.connections_total

    table = ExperimentTable(
        title=f"E12: {NUM_QUERIES} exact selects over {TABLE_SIZE} tuples ({SCHEME}), "
              "one provider, four serving paths",
        columns=["path", "round trips", "elapsed ms", "queries/s", "hits"],
    )
    for path, round_trips, elapsed_s, sizes in rows:
        table.add_row(
            path,
            round_trips,
            elapsed_s * 1000.0,
            NUM_QUERIES / elapsed_s if elapsed_s else float("inf"),
            sum(sizes),
        )
    return table, rows, connections_served


def test_e12_network_throughput(benchmark, record_table):
    table, rows, connections_served = run_once(benchmark, run_e12_network_throughput)
    record_table("e12_network_throughput", table)

    # Every path answered every query identically.
    for path, _, _, sizes in rows:
        assert sizes == EXPECTED_HITS, path

    timings = {path: elapsed for path, _, elapsed, _ in rows}
    # Batching must beat (or at least never materially lose to) sequential
    # round trips over the same socket -- that is its entire purpose.
    assert timings["tcp batched"] <= timings["tcp sequential"] * 1.5 + 0.005

    # One provider process genuinely served >= NUM_CLIENTS concurrent clients
    # (the acceptance bar for the serving layer): the proxy session plus one
    # connection per worker thread.
    assert connections_served >= NUM_CLIENTS + 1
