"""E9: ciphertext expansion of every scheme relative to the plaintext serialization.

Paper claim (implicit in the construction): the overhead is a constant factor
per tuple -- fixed-width searchable words plus an authenticated payload -- and
does not grow with the table size.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import run_e9_storage_overhead


def test_e9_storage_overhead(benchmark, record_table):
    result = run_once(benchmark, run_e9_storage_overhead, sizes=(200, 2000))
    record_table("e9_storage_overhead", result.to_table())

    by_scheme_size = {(r.scheme, r.relation_size): r for r in result.rows}
    schemes = {r.scheme for r in result.rows}
    assert "dph-swp" in schemes and "plaintext" in schemes

    for row in result.rows:
        # Every scheme stores at least the data itself (plaintext baseline ~1x,
        # everything else strictly more) and less than ~12x.
        assert 1.0 <= row.expansion < 12.0, row
    # Plaintext is the floor; the searchable construction costs more.
    for size in (200, 2000):
        assert (
            by_scheme_size[("dph-swp", size)].expansion
            > by_scheme_size[("plaintext", size)].expansion
        )
        assert (
            by_scheme_size[("bucketization", size)].expansion
            >= by_scheme_size[("plaintext", size)].expansion
        )
    # Expansion is a per-tuple constant: independent of the table size (within 10%).
    for scheme in schemes:
        small = by_scheme_size[(scheme, 200)].expansion
        large = by_scheme_size[(scheme, 2000)].expansion
        assert abs(small - large) / small < 0.1, scheme
