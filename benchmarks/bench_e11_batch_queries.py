"""E11: BATCH_QUERY throughput vs sequential QUERY round trips, per scheme.

New-workload claim (no paper counterpart): the protocol-v2 ``BATCH_QUERY``
message answers N exact selects in one round trip, so the per-message costs
-- envelope encode/parse, relation lookup, response framing -- are paid once
instead of N times, while the server performs the same ciphertext evaluation
work either way (and Eve's audit log records the same N queries).

The benchmark drives both paths through the byte-level wire interface
(``handle_message``), measuring whole frames in and out, for every scheme in
the registry.
"""

from __future__ import annotations

import time

from conftest import run_once

from repro.analysis.reporting import ExperimentTable
from repro.api import EncryptedDatabase
from repro.crypto.keys import SecretKey
from repro.crypto.rng import DeterministicRng
from repro.outsourcing import protocol
from repro.outsourcing.protocol import MessageKind, MessageV2
from repro.schemes.registry import available_schemes
from repro.workloads import EmployeeWorkload

TABLE_SIZE = 400
NUM_QUERIES = 40
SEED = 11


def _wire_sequential(db, name, encrypted_queries):
    """N QUERY frames, one round trip each; returns (elapsed_s, result_sizes)."""
    sizes = []
    start = time.perf_counter()
    for encrypted_query in encrypted_queries:
        frame = MessageV2(
            kind=MessageKind.QUERY,
            relation_name=name,
            body=protocol.encode_encrypted_query(encrypted_query),
        ).to_bytes()
        response = protocol.parse_message(db.server.handle_message(frame))
        result, _ = protocol.decode_evaluation_result(response.body)
        sizes.append(len(result.matching))
    return time.perf_counter() - start, sizes


def _wire_batched(db, name, encrypted_queries):
    """One BATCH_QUERY frame; returns (elapsed_s, result_sizes)."""
    start = time.perf_counter()
    frame = MessageV2(
        kind=MessageKind.BATCH_QUERY,
        relation_name=name,
        body=protocol.encode_query_batch(encrypted_queries),
    ).to_bytes()
    response = protocol.parse_message(db.server.handle_message(frame))
    results = protocol.decode_result_batch(response.body)
    return time.perf_counter() - start, [len(r.matching) for r in results]


def run_e11_batch_queries():
    """Time both paths for every registered scheme."""
    workload = EmployeeWorkload.generate(TABLE_SIZE, seed=SEED)
    queries = [
        workload.name_query(i * (TABLE_SIZE // NUM_QUERIES)) for i in range(NUM_QUERIES)
    ]
    table = ExperimentTable(
        title=f"E11: {NUM_QUERIES} exact selects over {TABLE_SIZE} tuples, "
              "sequential QUERY vs one BATCH_QUERY",
        columns=["scheme", "sequential ms", "batch ms", "speedup",
                 "queries/s (batch)", "hits"],
    )
    rows = []
    for scheme_name in available_schemes():
        rng = DeterministicRng(SEED)
        db = EncryptedDatabase.open(SecretKey.generate(rng=rng), scheme=scheme_name, rng=rng)
        db.create_table(workload.schema, rows=[tuple(t.as_dict().values()) for t in workload.relation])
        name = workload.schema.name
        handle = db.table(name)
        encrypted_queries = [handle.scheme.encrypt_query(q) for q in queries]

        sequential_s, sequential_sizes = _wire_sequential(db, name, encrypted_queries)
        batch_s, batch_sizes = _wire_batched(db, name, encrypted_queries)
        assert batch_sizes == sequential_sizes, scheme_name

        rows.append((scheme_name, sequential_s, batch_s, sum(batch_sizes)))
        table.add_row(
            scheme_name,
            sequential_s * 1000.0,
            batch_s * 1000.0,
            sequential_s / batch_s if batch_s else float("inf"),
            NUM_QUERIES / batch_s if batch_s else float("inf"),
            sum(batch_sizes),
        )
    return table, rows


def test_e11_batch_queries(benchmark, record_table):
    table, rows = run_once(benchmark, run_e11_batch_queries)
    record_table("e11_batch_queries", table)

    assert {row[0] for row in rows} == set(available_schemes())
    for scheme_name, sequential_s, batch_s, hits in rows:
        # Every query found its target tuple.
        assert hits >= NUM_QUERIES, scheme_name
        # Batching must never cost materially more than the sequential path
        # (the evaluation work is identical; only framing overhead differs).
        assert batch_s <= sequential_s * 1.5 + 0.005, scheme_name
