"""E4: Theorem 2.1 -- any database PH is insecure in the Definition 2.1 sense once q > 0.

Paper claim: the generic result-size adversaries win against *every* scheme
(including the paper's own construction) as soon as a single encrypted query
is available, actively or passively; with q = 0 the same adversaries are
powerless, which is exactly the relaxation the construction targets.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import run_e4_theorem21


def test_e4_theorem21(benchmark, record_table):
    result = run_once(benchmark, run_e4_theorem21, trials=40, table_size=8)
    record_table("e4_theorem21", result.to_table())

    with_queries = [r for r in result.rows if r.parameter in ("q=1 active", "q=1 passive")]
    without_queries = [r for r in result.rows if r.parameter == "q=0 active"]

    assert with_queries and without_queries
    # Every scheme falls once q > 0 ...
    assert all(r.success_rate >= 0.9 for r in with_queries)
    # ... and the adversary has nothing to work with at q = 0.
    assert all(abs(r.advantage) <= 0.35 for r in without_queries)
