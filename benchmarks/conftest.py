"""Shared helpers for the benchmark harness.

Every benchmark regenerates one experiment table (E1-E10, see DESIGN.md) and

* records the wall-clock of the full experiment through ``pytest-benchmark``;
* asserts the qualitative *shape* of the result (who wins, by roughly what
  factor) so a regression in the library shows up as a benchmark failure;
* writes the rendered table to ``benchmarks/results/<experiment>.txt`` so the
  rows can be compared against ``EXPERIMENTS.md`` even when pytest captures
  stdout;
* writes a machine-readable twin through the per-revision result store
  (``benchmarks/results/<git-rev>/<experiment>.json`` plus a latest copy at
  the legacy path; table + optional headline metrics/params + git revision,
  see ``_results.py``) so the performance trajectory accumulates across
  commits and is trackable by ``repro bench report`` / ``gate``.
"""

from __future__ import annotations

import pathlib

import pytest

from _results import write_result_json

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def record_table():
    """Return a callable that persists a rendered experiment table.

    ``metrics`` and ``params`` are optional headline numbers and experiment
    parameters folded into the JSON twin of the table.  The fixture
    snapshots the process-wide metrics plane at setup and records only the
    *delta* at record time, so one benchmark's ``runtime_metrics`` reflects
    its own operations -- not the histograms of every benchmark the pytest
    session ran before it.
    """
    from repro.obs.metrics import aggregate_snapshot, snapshot_delta

    baseline = aggregate_snapshot()

    def _record(name: str, table, metrics: dict | None = None,
                params: dict | None = None) -> str:
        RESULTS_DIR.mkdir(exist_ok=True)
        rendered = table.render()
        (RESULTS_DIR / f"{name}.txt").write_text(rendered + "\n", encoding="utf-8")
        write_result_json(
            name,
            title=table.title,
            columns=list(table.columns),
            rows=[list(row) for row in table.rows],
            metrics=metrics,
            params=params,
            runtime_metrics=snapshot_delta(baseline, aggregate_snapshot()),
        )
        print()
        print(rendered)
        return rendered

    return _record


def run_once(benchmark, func, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, kwargs=kwargs, iterations=1, rounds=1, warmup_rounds=0)
