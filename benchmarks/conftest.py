"""Shared helpers for the benchmark harness.

Every benchmark regenerates one experiment table (E1-E10, see DESIGN.md) and

* records the wall-clock of the full experiment through ``pytest-benchmark``;
* asserts the qualitative *shape* of the result (who wins, by roughly what
  factor) so a regression in the library shows up as a benchmark failure;
* writes the rendered table to ``benchmarks/results/<experiment>.txt`` so the
  rows can be compared against ``EXPERIMENTS.md`` even when pytest captures
  stdout;
* writes a machine-readable twin to ``benchmarks/results/<experiment>.json``
  (table + optional headline metrics/params + git revision, see
  ``_results.py``) so the performance trajectory is trackable by tooling.
"""

from __future__ import annotations

import pathlib

import pytest

from _results import write_result_json

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture
def record_table():
    """Return a callable that persists a rendered experiment table.

    ``metrics`` and ``params`` are optional headline numbers and experiment
    parameters folded into the JSON twin of the table.
    """

    def _record(name: str, table, metrics: dict | None = None,
                params: dict | None = None) -> str:
        RESULTS_DIR.mkdir(exist_ok=True)
        rendered = table.render()
        (RESULTS_DIR / f"{name}.txt").write_text(rendered + "\n", encoding="utf-8")
        write_result_json(
            name,
            title=table.title,
            columns=list(table.columns),
            rows=[list(row) for row in table.rows],
            metrics=metrics,
            params=params,
        )
        print()
        print(rendered)
        return rendered

    return _record


def run_once(benchmark, func, **kwargs):
    """Run ``func`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(func, kwargs=kwargs, iterations=1, rounds=1, warmup_rounds=0)
