"""E10: serving-path index lookups vs linear ciphertext scans.

Paper claim (full version, "straight-forward optimizations"): the provider
does not have to scan every ciphertext per query -- an encrypted inverted
index lets it answer exact selects in time proportional to the result.  This
benchmark drives full :class:`~repro.api.database.EncryptedDatabase` sessions
(indexed and plain) against a single provider and a 4-shard router, recording
client-observed ops/s, provider-examined tuples and envelope bytes per query.

Set ``REPRO_E10_FULL=1`` to extend the sweep to 100k tuples (minutes of
one-time SWP encryption; the serving measurements themselves stay fast).
"""

from __future__ import annotations

import os

from conftest import run_once

from repro.experiments import run_e10_index_vs_scan

SIZES = (1000, 10000, 100000) if os.environ.get("REPRO_E10_FULL") else (1000, 10000)


def _cell(rows, **want):
    match = [r for r in rows if all(getattr(r, k) == v for k, v in want.items())]
    assert len(match) == 1, (want, match)
    return match[0]


def test_e10_index_vs_scan(benchmark, record_table):
    result = run_once(benchmark, run_e10_index_vs_scan, sizes=SIZES)
    rows = result.rows

    # Every indexed cell returns exactly the tuples the scan returns.
    for row in rows:
        if row.access != "index":
            continue
        twin = _cell(
            rows,
            access="scan",
            topology=row.topology,
            relation_size=row.relation_size,
            query_kind=row.query_kind,
        )
        assert row.avg_result_size == twin.avg_result_size, (row, twin)

    # O(result) vs O(data): scans examine the whole relation, index point
    # lookups examine (about) the one matching tuple no matter the size.
    for row in rows:
        if row.access == "scan":
            assert row.avg_examined == row.relation_size, row
        elif row.query_kind == "point":
            assert row.avg_examined <= 2, row

    # The tentpole number: indexed exact selects are at least 5x faster than
    # scans at 10k tuples on a single provider.
    speedups = {}
    for size in SIZES:
        for topology in ("single", "cluster-4"):
            indexed = _cell(rows, access="index", topology=topology,
                            relation_size=size, query_kind="point")
            scanned = _cell(rows, access="scan", topology=topology,
                            relation_size=size, query_kind="point")
            speedups[f"point_speedup_{topology}_{size}"] = round(
                indexed.ops_per_s / scanned.ops_per_s, 2
            )
    assert speedups["point_speedup_single_10000"] >= 5.0, speedups

    ten_k = _cell(rows, access="index", topology="single",
                  relation_size=10000, query_kind="point")
    record_table(
        "e10_index_vs_scan",
        result.to_table(),
        metrics={
            **speedups,
            "index_point_examined_10k": ten_k.avg_examined,
            "index_point_ops_per_s_10k": round(ten_k.ops_per_s, 2),
        },
        params={"sizes": list(SIZES), "topologies": ["single", "cluster-4"]},
    )
