"""E10: the secure-index optimization vs the SWP linear scan.

Paper claim (full version, "straight-forward optimizations"): the construction
is generic in the searchable scheme, so a cheaper backend can replace the SWP
per-word scan without changing the interface or the q = 0 security argument.
The index backend performs one salted-hash membership test per document
instead of one PRF evaluation per word, so its server-side evaluation should
be no slower than SWP's at equal table sizes.
"""

from __future__ import annotations

from collections import defaultdict

from conftest import run_once

from repro.experiments import run_e10_index_vs_scan


def test_e10_index_vs_scan(benchmark, record_table):
    result = run_once(benchmark, run_e10_index_vs_scan, sizes=(1000, 5000))
    record_table("e10_index_vs_scan", result.to_table())

    by_backend = defaultdict(list)
    for row in result.rows:
        by_backend[row.backend].append(row)

    assert set(by_backend) == {"dph-swp", "dph-index"}

    # Both backends examine every document once per token (linear server work).
    for rows in by_backend.values():
        for row in rows:
            assert row.token_evaluations == row.relation_size

    # Aggregate server time: the index backend is not slower than the scan
    # (usually several times faster; we assert a conservative bound).
    swp_total = sum(r.server_eval_ms for r in by_backend["dph-swp"])
    index_total = sum(r.server_eval_ms for r in by_backend["dph-index"])
    assert index_total <= swp_total * 1.5

    # Both selectivities are exercised: a popular department and a single name.
    selectivities = sorted(r.selectivity for r in by_backend["dph-swp"])
    assert selectivities[0] < 0.01 and selectivities[-1] > 0.05
