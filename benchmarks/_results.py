"""Machine-readable benchmark results.

Every benchmark's human-readable table already lands in
``benchmarks/results/<name>.txt``; this module adds a structured twin
recorded through the per-revision result store (:mod:`repro.bench.store`):
the durable copy lives in ``benchmarks/results/<git-rev>/<name>.json`` so
runs accumulate across commits instead of clobbering each other, and a
"latest" copy stays at the legacy ``benchmarks/results/<name>.json`` path
for anything still reading it.

Payloads carry the rendered table (columns + rows), optional headline
``metrics`` and ``params``, and a ``runtime_metrics`` snapshot of the
PR 7 observability plane.  The store stamps ``schema_version``,
``git_rev``, a ``dirty`` flag and ``generated_at``.  The shared
:func:`write_result_json` is called by the ``record_table`` fixture (see
``conftest.py``), so every ``bench_e*`` gets its JSON history without
writing any plumbing -- and ``repro bench report`` / ``repro bench gate``
read the same layout.
"""

from __future__ import annotations

import pathlib

from repro.bench.store import ResultStore, git_revision  # noqa: F401 - re-export

RESULTS_DIR = pathlib.Path(__file__).parent / "results"

_STORE = ResultStore(RESULTS_DIR)


def runtime_metrics_snapshot() -> dict:
    """The process-wide observability snapshot, if the obs plane is importable.

    Merges every live :class:`~repro.obs.MetricsRegistry` (session, server,
    router).  Prefer passing ``record_table``'s *delta* snapshot instead:
    this whole-process view includes every benchmark the pytest session ran
    before this one.  Degrades to an empty dict rather than failing a
    benchmark over a diagnostics import.
    """
    try:
        from repro.obs.metrics import aggregate_snapshot
    except Exception:  # noqa: BLE001 - metrics are optional here
        return {}
    try:
        return aggregate_snapshot()
    except Exception:  # noqa: BLE001
        return {}


def write_result_json(
    name: str,
    *,
    title: str | None = None,
    columns: list[str] | None = None,
    rows: list[list[str]] | None = None,
    metrics: dict | None = None,
    params: dict | None = None,
    runtime_metrics: dict | None = None,
) -> pathlib.Path:
    """Persist one benchmark's structured result; returns the per-rev path.

    ``runtime_metrics`` should be the delta snapshot scoped to this
    benchmark's own operations (the ``record_table`` fixture computes it);
    when omitted the process-wide aggregate is recorded as before.
    """
    payload = {
        "benchmark": name,
        "title": title,
        "table": {"columns": columns or [], "rows": rows or []},
        "metrics": metrics or {},
        "params": params or {},
        "runtime_metrics": (
            runtime_metrics if runtime_metrics is not None
            else runtime_metrics_snapshot()
        ),
    }
    return _STORE.write(name, payload)
