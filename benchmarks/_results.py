"""Machine-readable benchmark results.

Every benchmark's human-readable table already lands in
``benchmarks/results/<name>.txt``; this module adds a structured twin,
``benchmarks/results/<name>.json``, so the performance trajectory of the
repository can be tracked across commits by tooling instead of eyeballs.

The JSON payload carries the rendered table (columns + rows), an optional
``metrics`` object of headline numbers (scaling factors, throughputs), the
benchmark's ``params`` (sizes, seeds, shard counts), and the git revision
the numbers were produced at.  The shared :func:`write_result_json` is
called by the ``record_table`` fixture (see ``conftest.py``), so every
``bench_e*`` gets its JSON file without writing any plumbing.
"""

from __future__ import annotations

import json
import pathlib
import subprocess
import time

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def git_revision() -> str | None:
    """The current commit hash, or None outside a usable git checkout."""
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=pathlib.Path(__file__).parent,
            capture_output=True,
            text=True,
            timeout=10,
            check=False,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    revision = completed.stdout.strip()
    return revision if completed.returncode == 0 and revision else None


def runtime_metrics_snapshot() -> dict:
    """The process-wide observability snapshot, if the obs plane is importable.

    Merges every live :class:`~repro.obs.MetricsRegistry` (session, server,
    router), so the latency histograms behind each benchmark's numbers ride
    along in its JSON.  Degrades to an empty dict rather than failing a
    benchmark over a diagnostics import.
    """
    try:
        from repro.obs.metrics import aggregate_snapshot
    except Exception:  # noqa: BLE001 - metrics are optional here
        return {}
    try:
        return aggregate_snapshot()
    except Exception:  # noqa: BLE001
        return {}


def write_result_json(
    name: str,
    *,
    title: str | None = None,
    columns: list[str] | None = None,
    rows: list[list[str]] | None = None,
    metrics: dict | None = None,
    params: dict | None = None,
) -> pathlib.Path:
    """Persist one benchmark's structured result; returns the written path."""
    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {
        "benchmark": name,
        "git_rev": git_revision(),
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
        "title": title,
        "table": {"columns": columns or [], "rows": rows or []},
        "metrics": metrics or {},
        "params": params or {},
        "runtime_metrics": runtime_metrics_snapshot(),
    }
    path = RESULTS_DIR / f"{name}.json"
    path.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n",
                    encoding="utf-8")
    return path
