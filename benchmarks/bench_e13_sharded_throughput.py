"""E13: aggregate throughput of the sharded multi-provider deployment.

New-workload claim (no paper counterpart): with :mod:`repro.cluster` the
encrypted relation spreads across N provider *processes*, so the linear
scan behind every exact select -- the price of the paper's security
guarantee -- runs on N cores instead of one.  Each shard holds ``~1/N`` of
the ciphertexts; a scatter-gathered select costs each shard a ``1/N``-sized
scan, all in parallel, so aggregate select throughput grows near-linearly
with the shard count *when each provider has a core to itself*.

Providers are spawned as real ``repro serve`` subprocesses on ephemeral
ports (separate processes, separate GILs -- in-process shard *threads*
cannot parallelize a Python scan), and every configuration, including the
1-shard baseline, is driven through ``cluster://`` so the comparison
isolates the shard count from the router/transport overhead.

Two scaling figures are reported, both from measured data:

* **wall-clock scaling** -- aggregate queries/s of the fleet vs the 1-shard
  baseline on *this* machine.  Near-linear on a multicore host (each
  provider process scans in parallel); necessarily ~1x on a single-core
  host, where every provider timeshares the same core and the total scan
  work per query is unchanged.  The assertion threshold therefore scales
  with the cores actually available to this run.
* **capacity scaling** -- the factor by which the fleet's select capacity
  grows when each provider runs on its own core (the deployment the
  subsystem exists for): the 1-shard scan size divided by the *largest*
  per-shard scan size, measured from the real ring placement of the
  ciphertexts.  With the ring's <=15% imbalance bound this is >= ~3.5x at
  4 shards, and it is asserted >= 2.5x unconditionally.

Inserts route to exactly one shard each (no fan-out); they are measured
pre-encrypted through the router's object-level API so the number reflects
the serving layer, not the client-side encryption in this single benchmark
process.  Insert throughput is round-trip-bound on loopback, so it is
reported but not expected to scale linearly here.

The correctness bar: every configuration answers every query with exactly
one true match, every shard of every fleet actually stores and serves a
slice of the relation, and the scaling assertions above hold.
"""

from __future__ import annotations

import os
import pathlib
import re
import signal
import subprocess
import sys
import threading
import time

from conftest import run_once

from repro.analysis.reporting import ExperimentTable
from repro.api import EncryptedDatabase
from repro.crypto.keys import SecretKey
from repro.crypto.rng import DeterministicRng

TABLE_SIZE = 1200
NUM_QUERIES = 32
NUM_CLIENTS = 4
NUM_INSERTS = 64
SHARD_COUNTS = (1, 2, 4)
SCHEME = "swp"
SEED = 13

EMP_DECL = "Emp(name:string[14], dept:string[5], salary:int[6])"
STARTUP_TIMEOUT_S = 30

_SRC = str(pathlib.Path(__file__).resolve().parent.parent / "src")


def _available_cores() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


#: Wall-clock scaling we can honestly demand at 4 shards given the cores
#: this run actually has: near-linear needs a core per provider; a lone
#: core can only bound the router's overhead (total scan work is unchanged).
def _wallclock_bar(cores: int) -> float:
    if cores >= 4:
        return 2.5
    if cores >= 2:
        return 1.5
    return 0.66


def _rows() -> list[tuple]:
    return [(f"emp{i}", f"D{i % 7}", 1000 + i) for i in range(TABLE_SIZE)]


def _statements() -> list[str]:
    step = TABLE_SIZE // NUM_QUERIES
    return [
        f"SELECT * FROM Emp WHERE name = 'emp{i * step}'" for i in range(NUM_QUERIES)
    ]


def _spawn_providers(count: int) -> tuple[list[subprocess.Popen], str]:
    """Start ``count`` provider subprocesses; returns (procs, cluster URL)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    procs, hosts = [], []
    for _ in range(count):
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", "--port", "0"],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=env,
        )
        procs.append(proc)
    try:
        for proc in procs:
            banner = proc.stdout.readline()
            match = re.search(r"tcp://([\d.]+):(\d+)", banner)
            if not match:
                raise RuntimeError(f"provider did not start: {banner!r}")
            hosts.append(f"{match.group(1)}:{match.group(2)}")
    except BaseException:
        _stop_providers(procs)
        raise
    return procs, "cluster://" + ",".join(hosts)


def _stop_providers(procs: list[subprocess.Popen]) -> None:
    for proc in procs:
        if proc.poll() is None:
            proc.send_signal(signal.SIGTERM)
    for proc in procs:
        try:
            proc.communicate(timeout=15)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.communicate(timeout=10)


def _concurrent_selects(url: str, secret_key, statements) -> tuple[float, list[int]]:
    """NUM_CLIENTS sessions, each scatter-gathering its slice of the selects."""
    slices = [statements[i::NUM_CLIENTS] for i in range(NUM_CLIENTS)]
    results: list[list[int] | None] = [None] * NUM_CLIENTS
    errors: list[Exception] = []

    def worker(index: int) -> None:
        try:
            with EncryptedDatabase.connect(url, secret_key, scheme=SCHEME) as session:
                session.attach_table(EMP_DECL)
                results[index] = [len(session.select(s).relation) for s in slices[index]]
        except Exception as exc:  # noqa: BLE001 - surfaced via the errors list
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(NUM_CLIENTS)]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=300)
    elapsed = time.perf_counter() - start
    assert not errors, errors
    sizes = [0] * len(statements)
    for client, slice_sizes in enumerate(results):
        assert slice_sizes is not None
        for offset, size in enumerate(slice_sizes):
            sizes[client + offset * NUM_CLIENTS] = size
    return elapsed, sizes


def _concurrent_inserts(router, encrypted_tuples) -> float:
    """Pre-encrypted tuples appended through the router by NUM_CLIENTS threads."""
    slices = [encrypted_tuples[i::NUM_CLIENTS] for i in range(NUM_CLIENTS)]
    errors: list[Exception] = []

    def worker(index: int) -> None:
        try:
            for encrypted_tuple in slices[index]:
                router.insert_tuple("Emp", encrypted_tuple)
        except Exception as exc:  # noqa: BLE001
            errors.append(exc)

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(NUM_CLIENTS)]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=300)
    elapsed = time.perf_counter() - start
    assert not errors, errors
    return elapsed


def run_e13_sharded_throughput():
    """Drive the same workload through 1-, 2- and 4-shard fleets."""
    secret_key = SecretKey.generate(rng=DeterministicRng(SEED))
    statements = _statements()
    rows = _rows()
    configs = []

    for shard_count in SHARD_COUNTS:
        procs, url = _spawn_providers(shard_count)
        try:
            with EncryptedDatabase.connect(
                url, secret_key, scheme=SCHEME, rng=DeterministicRng(SEED)
            ) as db:
                db.create_table(EMP_DECL, rows=rows)

                select_s, sizes = _concurrent_selects(url, secret_key, statements)

                # Fresh ciphertexts for the insert phase, encrypted outside
                # the timed region (same plaintexts for every shard count).
                handle = db.table("Emp")
                extra = [
                    handle.scheme.encrypt_tuple(
                        db._make_tuple(
                            handle.schema,
                            {"name": f"new{i}", "dept": "NEW", "salary": i},
                        )
                    )
                    for i in range(NUM_INSERTS)
                ]
                insert_s = _concurrent_inserts(db.server, extra)
                stored = db.count("Emp")
                per_shard = db.server.per_shard_tuple_counts("Emp")
                db.drop_table("Emp")
        finally:
            _stop_providers(procs)
        configs.append(
            {
                "shards": shard_count,
                "select_s": select_s,
                "select_qps": NUM_QUERIES / select_s,
                "insert_s": insert_s,
                "insert_rps": NUM_INSERTS / insert_s,
                "hits": sizes,
                "stored": stored,
                "per_shard_counts": sorted(per_shard.values()),
                # Largest per-query scan any provider performs: the fleet's
                # service demand when each provider has its own core.
                "max_shard_scan": max(per_shard.values()),
            }
        )

    table = ExperimentTable(
        title=(
            f"E13: {NUM_QUERIES} exact selects ({NUM_CLIENTS} concurrent clients) "
            f"+ {NUM_INSERTS} inserts over {TABLE_SIZE} tuples ({SCHEME}), "
            "provider subprocesses behind cluster://"
        ),
        columns=[
            "shards", "select ms", "select q/s", "wall-clock x",
            "max shard scan", "capacity x", "insert rows/s", "hits",
        ],
    )
    baseline_qps = configs[0]["select_qps"]
    baseline_scan = configs[0]["max_shard_scan"]
    for config in configs:
        table.add_row(
            config["shards"],
            config["select_s"] * 1000.0,
            config["select_qps"],
            config["select_qps"] / baseline_qps,
            config["max_shard_scan"],
            baseline_scan / config["max_shard_scan"],
            config["insert_rps"],
            sum(config["hits"]),
        )
    return table, configs


def test_e13_sharded_throughput(benchmark, record_table):
    table, configs = run_once(benchmark, run_e13_sharded_throughput)
    by_shards = {config["shards"]: config for config in configs}
    cores = _available_cores()
    wallclock_4x = by_shards[4]["select_qps"] / by_shards[1]["select_qps"]
    capacity_4x = by_shards[1]["max_shard_scan"] / by_shards[4]["max_shard_scan"]
    record_table(
        "e13_sharded_throughput",
        table,
        metrics={
            "select_qps": {str(c["shards"]): round(c["select_qps"], 2) for c in configs},
            "insert_rps": {str(c["shards"]): round(c["insert_rps"], 2) for c in configs},
            "per_shard_counts": {
                str(c["shards"]): c["per_shard_counts"] for c in configs
            },
            "select_wallclock_scaling_4_shards": round(wallclock_4x, 3),
            "select_capacity_scaling_4_shards": round(capacity_4x, 3),
            "cpu_cores": cores,
        },
        params={
            "table_size": TABLE_SIZE,
            "num_queries": NUM_QUERIES,
            "num_clients": NUM_CLIENTS,
            "num_inserts": NUM_INSERTS,
            "shard_counts": list(SHARD_COUNTS),
            "scheme": SCHEME,
            "seed": SEED,
        },
    )

    for config in configs:
        # Every configuration answered every query with exactly its one match.
        assert config["hits"] == [1] * NUM_QUERIES, config["shards"]
        assert config["stored"] == TABLE_SIZE + NUM_INSERTS
        # The ring actually spread the data: every shard stores and serves
        # a slice (no shard may sit empty behind the scatter).
        assert all(count > 0 for count in config["per_shard_counts"]), config

    # The acceptance bar of the cluster subsystem: a 4-shard fleet has
    # >= 2.5x the select capacity of one provider -- each provider's
    # per-query scan shrank to ~1/4, measured from the real placement.
    assert capacity_4x >= 2.5, f"4-shard capacity scaling only {capacity_4x:.2f}x"

    # And the wall-clock throughput on *this* machine must back it up to
    # the extent the machine can: near-linear with a core per provider,
    # bounded router overhead when every provider shares one core.
    bar = _wallclock_bar(cores)
    assert wallclock_4x >= bar, (
        f"4-shard wall-clock scaling {wallclock_4x:.2f}x under the "
        f"{bar}x bar for {cores} core(s)"
    )
