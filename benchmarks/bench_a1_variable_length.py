"""Ablation A1: variable-length attribute words vs the poster's fixed global width.

DESIGN.md section 6 calls out the word-layout choice for ablation.  The
full-version optimization gives every attribute its own word width; on a
schema with one wide attribute and several narrow ones it should cut ciphertext
size substantially while leaving correctness and q = 0 security untouched.
"""

from __future__ import annotations

import time

from conftest import run_once

from repro.analysis.reporting import ExperimentTable
from repro.core import SearchableSelectDph, VariableWidthSelectDph, check_homomorphism
from repro.crypto.keys import SecretKey
from repro.crypto.rng import DeterministicRng
from repro.relational import Relation, RelationSchema, Selection
from repro.workloads.distributions import CategoricalDistribution, UniformIntDistribution
from repro.workloads.generator import SyntheticRelationGenerator

SIZES = (500, 2000)


def _document_schema() -> RelationSchema:
    return RelationSchema.parse("Doc(title:string[40], category:string[6], year:int[4])")


def _document_relation(size: int, seed: int) -> Relation:
    schema = _document_schema()
    generator = SyntheticRelationGenerator(
        schema,
        {
            "category": CategoricalDistribution(
                ["DB", "CRYPTO", "OS", "NET"], [0.4, 0.3, 0.2, 0.1]
            ),
            "year": UniformIntDistribution(1995, 2006),
        },
    )
    return generator.generate(size, seed=seed)


def run_ablation(sizes=SIZES, seed: int = 11):
    """Compare storage and end-to-end cost of the two word layouts."""
    rows = []
    for size in sizes:
        relation = _document_relation(size, seed)
        schema = relation.schema
        query = Selection.equals("category", "DB")
        for label, dph in (
            ("fixed-width", SearchableSelectDph(
                schema, SecretKey.generate(rng=DeterministicRng(seed)), backend="swp",
                rng=DeterministicRng(seed + 1))),
            ("variable-width", VariableWidthSelectDph(
                schema, SecretKey.generate(rng=DeterministicRng(seed)),
                rng=DeterministicRng(seed + 2))),
        ):
            start = time.perf_counter()
            encrypted = dph.encrypt_relation(relation)
            encrypt_ms = (time.perf_counter() - start) * 1000

            evaluator = dph.server_evaluator()
            encrypted_query = dph.encrypt_query(query)
            start = time.perf_counter()
            evaluation = evaluator.evaluate(encrypted_query, encrypted)
            server_ms = (time.perf_counter() - start) * 1000

            report = check_homomorphism(dph, relation, [query])
            rows.append(
                {
                    "layout": label,
                    "n": size,
                    "bytes": encrypted.size_in_bytes(),
                    "encrypt_ms": encrypt_ms,
                    "server_ms": server_ms,
                    "holds": report.holds,
                }
            )
    return rows


def _to_table(rows) -> ExperimentTable:
    table = ExperimentTable(
        "A1: fixed vs variable word layout",
        ["layout", "n", "ciphertext bytes", "encrypt ms", "server ms", "homomorphism"],
    )
    for row in rows:
        table.add_row(
            row["layout"], row["n"], row["bytes"], row["encrypt_ms"], row["server_ms"], row["holds"]
        )
    return table


def test_a1_variable_length(benchmark, record_table):
    rows = run_once(benchmark, run_ablation, sizes=SIZES)
    record_table("a1_variable_length", _to_table(rows))

    by_key = {(r["layout"], r["n"]): r for r in rows}
    for size in SIZES:
        fixed = by_key[("fixed-width", size)]
        variable = by_key[("variable-width", size)]
        # Both layouts preserve the homomorphism property ...
        assert fixed["holds"] and variable["holds"]
        # ... and the variable layout stores meaningfully fewer bytes (>= 20% saving
        # on this schema, where two of three attributes are much narrower than the widest).
        assert variable["bytes"] <= fixed["bytes"] * 0.8
