"""E15: what the async pipelined transport and parallel dispatch buy.

New-workload claim (no paper counterpart): the outsourced database's hot
path is envelope round trips, so throughput is gated by how many envelopes
the transport keeps in flight and whether the provider can dispatch them
in parallel.  Two measurements against real TCP providers:

* **sync sequential vs async pipelined** -- the same N single-hit exact
  selects through the blocking proxy one-at-a-time, through the asyncio
  proxy with 1 request in flight, and with 8 in flight over **one**
  connection.  Pipelining's win is *hiding round-trip latency*, so the
  headline comparison runs through a latency relay emulating a
  ``LINK_DELAY_MS``-each-way link (a LAN hop); loopback numbers are
  recorded alongside for transparency.  On this benchmark host (a 1-core
  container) loopback round trips have effectively zero hideable latency
  and the serving work is serial on the GIL, so loopback shows parity by
  construction -- the JSON carries both so multi-core hosts and real
  links can be compared.
* **mixed-relation dispatch: serialized vs parallel** -- one provider
  stores a big relation (expensive scans) and a small one (cheap
  lookups); a slow client hammers the big relation while a fast client
  runs its small queries.  With ``dispatch_workers=1`` (the old
  single-worker serving model) the fast client queues behind every big
  scan; with per-relation parallel dispatch it never waits on the other
  relation's scans.

The correctness bar: every path answers every query with exactly the same
hit counts; the async pipelined client must sustain >= 2x the op/s of the
sequential sync client at 8 in-flight requests over the emulated link;
and the parallel-dispatch fast lane must beat the serialized baseline.
"""

from __future__ import annotations

import queue
import socket
import threading
import time

from conftest import run_once

from repro.analysis.reporting import ExperimentTable
from repro.api import EncryptedDatabase
from repro.crypto.keys import SecretKey
from repro.crypto.rng import DeterministicRng
from repro.net import AsyncRemoteServerProxy, RemoteServerProxy, ThreadedTcpServer
from repro.outsourcing import protocol
from repro.outsourcing.protocol import MessageKind, MessageV2
from repro.relational import Selection

SEED = 15
SCHEME = "swp"

# Phase 1: pipelining depth over one provider / one relation.
PIPELINE_TABLE_SIZE = 16
PIPELINE_QUERIES = 120
IN_FLIGHT = 8
LINK_DELAY_MS = 2.0  # each way; a realistic same-datacenter hop

# Phase 2: mixed-relation dispatch.
BIG_TABLE_SIZE = 1500
SMALL_TABLE_SIZE = 4
BIG_SCANS = 4
SMALL_QUERIES = 40
DISPATCH_WORKERS = 4

EMP_DECL_TEMPLATE = "{name}(name:string[14], dept:string[5], salary:int[6])"


class LatencyRelay:
    """A TCP forwarder adding a fixed one-way delay in each direction.

    Chunks are timestamped on arrival and released ``delay`` later by a
    dedicated sender thread per direction, so many requests can be *in the
    pipe* simultaneously -- exactly the property pipelining exploits and a
    zero-latency loopback cannot exhibit.
    """

    def __init__(self, target_port: int, delay_s: float) -> None:
        self._target_port = target_port
        self._delay = delay_s
        self._listener = socket.socket()
        self._listener.bind(("127.0.0.1", 0))
        self._listener.listen(8)
        self.port = self._listener.getsockname()[1]
        self._closing = False
        self._sockets: list[socket.socket] = []
        self._accepter = threading.Thread(target=self._accept_loop, daemon=True)
        self._accepter.start()

    def _accept_loop(self) -> None:
        while not self._closing:
            try:
                downstream, _ = self._listener.accept()
            except OSError:
                return
            upstream = socket.create_connection(("127.0.0.1", self._target_port))
            for sock in (downstream, upstream):
                sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._sockets += [downstream, upstream]
            self._pump(downstream, upstream)
            self._pump(upstream, downstream)

    def _pump(self, src: socket.socket, dst: socket.socket) -> None:
        pipe: queue.Queue = queue.Queue()

        def reader() -> None:
            while True:
                try:
                    chunk = src.recv(65536)
                except OSError:
                    chunk = b""
                pipe.put((time.monotonic() + self._delay, chunk))
                if not chunk:
                    return

        def writer() -> None:
            while True:
                due, chunk = pipe.get()
                wait = due - time.monotonic()
                if wait > 0:
                    time.sleep(wait)
                if not chunk:
                    try:
                        dst.shutdown(socket.SHUT_WR)
                    except OSError:
                        pass
                    return
                try:
                    dst.sendall(chunk)
                except OSError:
                    return

        threading.Thread(target=reader, daemon=True).start()
        threading.Thread(target=writer, daemon=True).start()

    def close(self) -> None:
        self._closing = True
        self._listener.close()
        for sock in self._sockets:
            try:
                sock.close()
            except OSError:
                pass


def _make_table(db, name: str, size: int) -> None:
    db.create_table(
        EMP_DECL_TEMPLATE.format(name=name),
        rows=[(f"emp{i}", "HR" if i % 2 else "IT", 1000 + i) for i in range(size)],
    )


def _query_envelopes(db, name: str, size: int, count: int) -> list[bytes]:
    """Pre-encrypted single-hit QUERY envelopes (crypto cost paid up front,
    so the timed sections measure transport + serving, not key schedules)."""
    scheme = db.table(name).scheme
    envelopes = []
    for i in range(count):
        encrypted = scheme.encrypt_query(Selection.equals("name", f"emp{i % size}"))
        envelopes.append(
            MessageV2(
                kind=MessageKind.QUERY,
                relation_name=name,
                body=protocol.encode_encrypted_query(encrypted),
            ).to_bytes()
        )
    return envelopes


def _hits(raw_response: bytes) -> int:
    response = protocol.parse_message(raw_response)
    assert response.kind is MessageKind.QUERY_RESULT, response.kind
    result, _ = protocol.decode_evaluation_result(response.body)
    return len(result.matching)


def _sync_sequential(port: int, envelopes: list[bytes]) -> tuple[float, int]:
    proxy = RemoteServerProxy("127.0.0.1", port)
    try:
        start = time.perf_counter()
        hits = sum(_hits(proxy.handle_message(raw)) for raw in envelopes)
        return time.perf_counter() - start, hits
    finally:
        proxy.close()


def _async_pipelined(
    port: int, envelopes: list[bytes], in_flight: int
) -> tuple[float, int]:
    import asyncio

    proxy = AsyncRemoteServerProxy("127.0.0.1", port)

    async def drive() -> int:
        window = asyncio.Semaphore(in_flight)

        async def one(raw: bytes) -> int:
            async with window:
                return _hits(await proxy.handle_message_async(raw))

        return sum(await asyncio.gather(*(one(raw) for raw in envelopes)))

    try:
        start = time.perf_counter()
        hits = proxy.loop_thread.run(drive())
        return time.perf_counter() - start, hits
    finally:
        proxy.close()


def _pipeline_phase(server_port: int, envelopes: list[bytes], via_port: int):
    """(sync, async@1, async@IN_FLIGHT) op/s through the given entry port."""
    results = {}
    sync_s, sync_hits = _sync_sequential(via_port, envelopes)
    one_s, one_hits = _async_pipelined(via_port, envelopes, in_flight=1)
    deep_s, deep_hits = _async_pipelined(via_port, envelopes, in_flight=IN_FLIGHT)
    assert sync_hits == one_hits == deep_hits == len(envelopes)
    results["sync"] = len(envelopes) / sync_s
    results["async1"] = len(envelopes) / one_s
    results[f"async{IN_FLIGHT}"] = len(envelopes) / deep_s
    results["elapsed"] = {"sync": sync_s, "async1": one_s, f"async{IN_FLIGHT}": deep_s}
    return results


def _mixed_load(port: int, secret_key) -> tuple[float, float, int, int]:
    """A slow big-relation client and a fast small-relation client at once.

    Returns (fast-lane seconds, combined wall seconds, big hits, small hits).
    """
    db = EncryptedDatabase.connect(
        f"tcp://127.0.0.1:{port}", secret_key, rng=DeterministicRng(SEED)
    )
    _make_table(db, "Big", BIG_TABLE_SIZE)
    _make_table(db, "Small", SMALL_TABLE_SIZE)
    big_envelopes = _query_envelopes(db, "Big", BIG_TABLE_SIZE, BIG_SCANS)
    small_envelopes = _query_envelopes(db, "Small", SMALL_TABLE_SIZE, SMALL_QUERIES)
    # Two independent connections, as two tenants would have.
    slow_proxy = RemoteServerProxy("127.0.0.1", port)
    fast_proxy = RemoteServerProxy("127.0.0.1", port)
    outcomes: dict[str, float | int] = {}
    started = threading.Barrier(2)

    def slow_client() -> None:
        started.wait()
        outcomes["big_hits"] = sum(
            _hits(slow_proxy.handle_message(r)) for r in big_envelopes
        )

    def fast_client() -> None:
        started.wait()
        begin = time.perf_counter()
        outcomes["small_hits"] = sum(
            _hits(fast_proxy.handle_message(r)) for r in small_envelopes
        )
        outcomes["fast_lane_s"] = time.perf_counter() - begin

    threads = [threading.Thread(target=slow_client), threading.Thread(target=fast_client)]
    wall_start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(timeout=300)
    wall_s = time.perf_counter() - wall_start
    slow_proxy.close()
    fast_proxy.close()
    db.server.drop_relation("Big")
    db.server.drop_relation("Small")
    db.close()
    return (
        float(outcomes["fast_lane_s"]),
        wall_s,
        int(outcomes["big_hits"]),
        int(outcomes["small_hits"]),
    )


def run_e15_async_pipeline():
    secret_key = SecretKey.generate(rng=DeterministicRng(SEED))
    rows = []
    metrics: dict[str, float] = {}

    # ---------------- Phase 1: pipelining depth ---------------- #
    with ThreadedTcpServer() as server:
        db = EncryptedDatabase.connect(
            f"tcp://127.0.0.1:{server.port}", secret_key, rng=DeterministicRng(SEED)
        )
        _make_table(db, "Emp", PIPELINE_TABLE_SIZE)
        envelopes = _query_envelopes(db, "Emp", PIPELINE_TABLE_SIZE, PIPELINE_QUERIES)

        loopback = _pipeline_phase(server.port, envelopes, via_port=server.port)
        relay = LatencyRelay(server.port, LINK_DELAY_MS / 1000.0)
        try:
            linked = _pipeline_phase(server.port, envelopes, via_port=relay.port)
        finally:
            relay.close()
        db.server.drop_relation("Emp")
        db.close()

    for label, result in (("loopback", loopback), (f"{LINK_DELAY_MS}ms link", linked)):
        rows.append((f"sync sequential ({label})", 1,
                     result["elapsed"]["sync"], result["sync"]))
        rows.append((f"async pipelined ({label})", 1,
                     result["elapsed"]["async1"], result["async1"]))
        rows.append((f"async pipelined ({label})", IN_FLIGHT,
                     result["elapsed"][f"async{IN_FLIGHT}"], result[f"async{IN_FLIGHT}"]))
    metrics["loopback_sync_ops_per_s"] = round(loopback["sync"], 1)
    metrics["loopback_async8_ops_per_s"] = round(loopback[f"async{IN_FLIGHT}"], 1)
    metrics["link_sync_ops_per_s"] = round(linked["sync"], 1)
    metrics["link_async1_ops_per_s"] = round(linked["async1"], 1)
    metrics["link_async8_ops_per_s"] = round(linked[f"async{IN_FLIGHT}"], 1)
    metrics["pipelining_speedup_vs_sync"] = round(
        linked[f"async{IN_FLIGHT}"] / linked["sync"], 2
    )
    metrics["loopback_speedup_vs_sync"] = round(
        loopback[f"async{IN_FLIGHT}"] / loopback["sync"], 2
    )

    # ---------------- Phase 2: mixed-relation dispatch ---------------- #
    fast_lane = {}
    for label, workers in (("serialized", 1), ("parallel", DISPATCH_WORKERS)):
        with ThreadedTcpServer(dispatch_workers=workers) as server:
            fast_s, wall_s, big_hits, small_hits = _mixed_load(server.port, secret_key)
        assert big_hits == BIG_SCANS
        assert small_hits == SMALL_QUERIES
        fast_lane[label] = fast_s
        rows.append((f"mixed dispatch ({label}, {workers}w) fast lane", 1, fast_s,
                     SMALL_QUERIES / fast_s))
        metrics[f"mixed_{label}_fast_lane_s"] = round(fast_s, 4)
        metrics[f"mixed_{label}_wall_s"] = round(wall_s, 4)
    metrics["fast_lane_speedup"] = round(
        fast_lane["serialized"] / fast_lane["parallel"], 2
    )

    table = ExperimentTable(
        title=f"E15: async pipelined transport ({PIPELINE_QUERIES} selects, one "
              f"provider, {LINK_DELAY_MS}ms-each-way link emulation) and "
              f"per-relation dispatch ({BIG_SCANS} big scans vs "
              f"{SMALL_QUERIES} small lookups)",
        columns=["path", "in flight", "elapsed ms", "ops/s"],
    )
    for path, in_flight, elapsed_s, ops in rows:
        table.add_row(path, in_flight, elapsed_s * 1000.0, ops)
    return table, metrics


def test_e15_async_pipeline(benchmark, record_table):
    table, metrics = run_once(benchmark, run_e15_async_pipeline)
    record_table(
        "e15_async_pipeline",
        table,
        metrics=metrics,
        params={
            "pipeline_table_size": PIPELINE_TABLE_SIZE,
            "pipeline_queries": PIPELINE_QUERIES,
            "in_flight": IN_FLIGHT,
            "link_delay_ms_each_way": LINK_DELAY_MS,
            "big_table_size": BIG_TABLE_SIZE,
            "big_scans": BIG_SCANS,
            "small_queries": SMALL_QUERIES,
            "dispatch_workers": DISPATCH_WORKERS,
            "scheme": SCHEME,
            "seed": SEED,
            "benchmark_host_cores": 1,
        },
    )
    # The acceptance bar: 8 in-flight pipelined requests sustain >= 2x the
    # sequential sync client's op/s against the same provider over a link
    # with real (emulated) latency -- the latency pipelining exists to hide.
    assert metrics["pipelining_speedup_vs_sync"] >= 2.0, metrics
    # Parallel per-relation dispatch must serve the fast relation quicker
    # than the serialized single-worker baseline under mixed load.
    assert metrics["fast_lane_speedup"] > 1.2, metrics
