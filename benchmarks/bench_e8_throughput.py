"""E8: end-to-end cost of an outsourced exact select, per scheme and table size.

Paper claim: the construction's overhead is the price of provable (q = 0)
security -- encryption, query encryption, server-side search and client-side
decryption+filtering all scale linearly in the table size, with the searchable
backends costing a constant factor more than the weakly-protected baselines
and the plaintext floor.
"""

from __future__ import annotations

from collections import defaultdict

from conftest import run_once

from repro.experiments import run_e8_throughput

SIZES = (100, 1000, 5000)


def test_e8_throughput(benchmark, record_table):
    result = run_once(benchmark, run_e8_throughput, sizes=SIZES)
    record_table("e8_throughput", result.to_table())

    by_scheme = defaultdict(dict)
    for row in result.rows:
        by_scheme[row.scheme][row.relation_size] = row

    expected_schemes = {
        "dph-swp", "dph-index", "bucketization", "damiani-hash", "deterministic", "plaintext",
    }
    assert set(by_scheme) == expected_schemes

    for scheme, per_size in by_scheme.items():
        # Every phase completed and returned a correct-looking result.
        assert all(row.result_size > 0 for row in per_size.values()), scheme
        # Linear-ish scaling: 50x more tuples must not cost more than ~500x
        # (i.e. clearly not quadratic) for encryption and server evaluation.
        small, large = per_size[SIZES[0]], per_size[SIZES[-1]]
        growth = SIZES[-1] / SIZES[0]
        assert large.encrypt_ms <= max(1.0, small.encrypt_ms) * growth * 10, scheme
        assert large.server_eval_ms <= max(1.0, small.server_eval_ms) * growth * 10, scheme

    # The secure construction is more expensive than the plaintext floor at scale.
    assert (
        by_scheme["dph-swp"][SIZES[-1]].encrypt_ms
        >= by_scheme["plaintext"][SIZES[-1]].encrypt_ms
    )
