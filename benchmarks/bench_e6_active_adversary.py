"""E6: the active "John" attack (Section 2).

Paper claim: with the query-encryption oracle, Eve issues sigma_{name:John}
followed by sigma_{hospital:X} for X in {1,2,3} and, by intersecting results,
determines John's hospital; "analogously, she can find his status".  The whole
attack needs only a handful of oracle queries and succeeds against any
database PH, including the paper's construction.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import run_e6_active_adversary


def test_e6_active_adversary(benchmark, record_table):
    result = run_once(
        benchmark,
        run_e6_active_adversary,
        sizes=(500, 2000, 8000),
        trials=3,
        oracle_budget=6,
    )
    record_table("e6_active_adversary", result.to_table())

    assert result.rows
    for row in result.rows:
        assert row.hospital_success_rate == 1.0
        assert row.outcome_success_rate == 1.0
        assert row.full_success_rate == 1.0
        # The paper's budget: 4 queries for the hospital, a couple more for the
        # outcome.  Our attacker never needs more than 6.
        assert row.mean_oracle_queries <= 6.0
