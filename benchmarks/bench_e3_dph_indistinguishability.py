"""E3: q = 0 indistinguishability of the paper's construction.

Paper claim (Section 3): under the relaxation q = 0 the searchable-encryption
construction is secure.  Empirically, every implemented q = 0 distinguisher --
including the one that breaks bucketization -- must end up with advantage
statistically indistinguishable from zero against both backends.
"""

from __future__ import annotations

from conftest import run_once

from repro.experiments import run_e3_dph_indistinguishability


def test_e3_dph_indistinguishability(benchmark, record_table):
    result = run_once(benchmark, run_e3_dph_indistinguishability, trials=150)
    record_table("e3_dph_indistinguishability", result.to_table())

    assert result.rows, "experiment produced no rows"
    for row in result.rows:
        assert row.scheme in ("dph-swp", "dph-index")
        # Advantage ~0 for every adversary against both backends.
        assert abs(row.advantage) <= 0.22, (
            f"{row.adversary} achieved advantage {row.advantage:.3f} against {row.scheme}"
        )
        assert not row.result.broken_by(threshold=0.5)
